"""End-to-end observability: one traced handshake, checked for fidelity.

Pins the subsystem's three promises: the trace covers (almost) all of the
simulated handshake, the span-derived library breakdown agrees with the
cost model's accounting, and switching tracing on changes *nothing* about
the simulated numbers.
"""

import json

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.report import render_table3_from_spans, render_trace_report
from repro.obs.export import write_chrome_trace
from repro.obs.flame import library_breakdown, library_shares
from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer

CONFIG = ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    metrics = Metrics()
    result = run_experiment(CONFIG, tracer=tracer, metrics=metrics)
    return tracer, metrics, result


def test_trace_has_the_expected_lanes(traced):
    tracer, _, _ = traced
    tracks = set(tracer.tracks())
    assert {"phases", "client-cpu", "server-cpu"} <= tracks
    assert any(t.startswith("wire-") for t in tracks)


def test_spans_nest_on_the_simulated_clock(traced):
    tracer, _, _ = traced
    for track in tracer.tracks():
        spans = tracer.spans_on(track)
        for span in spans:
            assert span.end >= span.start
        # every depth>0 span sits inside some shallower span on its track
        for span in spans:
            if span.depth == 0:
                continue
            assert any(parent.depth < span.depth
                       and parent.start <= span.start + 1e-12
                       and span.end <= parent.end + 1e-12
                       for parent in spans), span


def test_phase_spans_cover_the_handshake(traced):
    tracer, _, result = traced
    phases = [s for s in tracer.spans_on("phases") if s.cat == "phase"]
    wall_end = max(s.end for s in tracer.spans_on("phases"))
    covered = sum(s.duration for s in phases)
    assert covered >= 0.95 * wall_end
    # and the partA/partB phases reproduce the measured medians
    part_a = next(s for s in phases if s.name.startswith("partA"))
    part_b = next(s for s in phases if s.name.startswith("partB"))
    assert part_a.duration == pytest.approx(result.part_a_median, rel=1e-9)
    assert part_b.duration == pytest.approx(result.part_b_median, rel=1e-9)


def test_span_library_breakdown_matches_cost_model(traced):
    tracer, _, result = traced
    for track, legacy in (("client-cpu", result.client_cpu_by_library),
                          ("server-cpu", result.server_cpu_by_library)):
        from_spans = library_breakdown(tracer, track)
        assert set(from_spans) == set(legacy)
        shares = library_shares(tracer, track)
        legacy_total = sum(legacy.values())
        for lib, seconds in legacy.items():
            # Table 3 acceptance: percentages agree within one point
            assert shares[lib] == pytest.approx(seconds / legacy_total, abs=0.01)
            # and the raw seconds agree exactly (same charges, same clock)
            assert from_spans[lib] == pytest.approx(seconds, rel=1e-9)


def test_tracing_changes_no_simulated_numbers(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    plain = run_experiment(CONFIG, use_cache=False)
    traced_result = run_experiment(CONFIG, use_cache=False, tracer=Tracer())
    assert traced_result.total_samples == plain.total_samples
    assert traced_result.part_a_samples == plain.part_a_samples
    assert traced_result.client_cpu_by_library == plain.client_cpu_by_library
    assert traced_result.metrics == plain.metrics
    assert traced_result.n_handshakes == plain.n_handshakes


def test_traced_runs_bypass_the_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run_experiment(CONFIG, tracer=Tracer())
    assert not (tmp_path / "experiment").exists()  # nothing stored
    run_experiment(CONFIG)
    assert (tmp_path / "experiment").exists()      # untraced run stores


def test_run_metrics_snapshot_on_result(traced):
    _, metrics, result = traced
    counters = result.metrics["counters"]
    assert counters["handshake.count"] >= 1
    assert counters["wire.c2s.packets"] > 0
    assert counters["wire.s2c.bytes"] > counters["wire.c2s.bytes"]
    assert result.metrics["histograms"]["handshake.total"]["count"] >= 1
    # the caller's registry saw the same counters
    assert metrics.value("handshake.count") == counters["handshake.count"]


def test_chrome_export_of_real_trace_is_valid(tmp_path, traced):
    tracer, _, _ = traced
    path = write_chrome_trace(tracer, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    events = loaded["traceEvents"]
    assert len(events) > 50
    assert {e["ph"] for e in events} >= {"M", "X", "i"}


def test_report_renderers_run_on_real_trace(traced):
    tracer, _, result = traced
    report = render_trace_report(tracer)
    assert "client CPU" in report and "server CPU" in report
    assert "why was this slow" in report
    table3 = render_table3_from_spans(tracer, result)
    assert "libcrypto" in table3
