"""Seed-sweep soak: chaos across lossy scenarios never escapes untyped.

The full sweep (~200 seeds x scenario x fault plan) runs under ``-m soak``
(CI's dedicated step); the trimmed sweep rides in tier-1. The contract in
both: every handshake ends in a typed :class:`HandshakeOutcome` — no
exception unwinds through the event loop, failed runs zero their phase
timings, and a replayed seed reproduces its outcome bit-identically.
"""

import pytest

from repro.crypto.drbg import Drbg
from repro.faults.outcome import FAILURE_KINDS, KIND_SUCCESS
from repro.faults.plan import FAULT_PLANS
from repro.netsim.costmodel import CostModel
from repro.netsim.netem import SCENARIOS
from repro.netsim.scripted import scripted_apps
from repro.netsim.testbed import run_simulated_handshake
from repro.core.experiment import load_script
from repro.tls.server import BufferPolicy

_SCENARIOS = ("high-loss", "lte-m", "5g")
# every named plan that composes with scripted replay (checksum-safe)
_PLANS = ("bit-rot", "dup", "reorder", "chaos")


@pytest.fixture(scope="module")
def script():
    return load_script("x25519", "rsa:1024", BufferPolicy.OPTIMIZED)


def _one(script, seed_index: int):
    scenario = SCENARIOS[_SCENARIOS[seed_index % len(_SCENARIOS)]]
    plan = FAULT_PLANS[_PLANS[seed_index % len(_PLANS)]]
    client, server = scripted_apps(script)
    return run_simulated_handshake(
        client, server, scenario=scenario,
        netem_drbg=Drbg(f"soak:{seed_index}"), cost_model=CostModel(),
        max_sim_seconds=60.0, plan=plan)


def _sweep(script, seeds):
    outcomes = {}
    for i in seeds:
        trace = _one(script, i)
        outcome = trace.outcome
        assert outcome.kind == KIND_SUCCESS or outcome.kind in FAILURE_KINDS
        if outcome.ok:
            assert 0 < trace.total <= 60.0
            assert trace.part_a > 0 and trace.part_b > 0
        else:
            assert trace.part_a == trace.part_b == trace.total == 0.0
            assert outcome.detail
        assert trace.client_wire_bytes > 0        # the wire saw traffic either way
        outcomes[outcome.key] = outcomes.get(outcome.key, 0) + 1
    return outcomes


def test_soak_trimmed_subset(script):
    outcomes = _sweep(script, range(16))
    assert sum(outcomes.values()) == 16
    assert outcomes.get("success", 0) > 0


def test_soak_replayed_seed_is_bit_identical(script):
    first, second = _one(script, 7), _one(script, 7)
    assert first == second                         # full HandshakeTrace eq


@pytest.mark.soak
def test_soak_full_sweep(script):
    outcomes = _sweep(script, range(200))
    assert sum(outcomes.values()) == 200
    # the sweep must actually exercise the happy path at scale; failures,
    # when they occur, are typed (asserted per-run inside _sweep)
    assert outcomes.get("success", 0) > 150
