"""EXC checker: broad excepts, mutable defaults, untyped sim-layer raises."""

import pytest


def codes(report):
    return [f.code for f in report.findings]


def test_bare_except_flagged(lint):
    report = lint("repro/core/fix.py", """
        def load():
            try:
                return open("x").read()
            except:
                return None
    """, select=["exc"])
    assert codes(report) == ["EXC001"]
    assert "bare" in report.findings[0].message


def test_broad_except_exception_flagged(lint):
    report = lint("repro/core/fix.py", """
        def load():
            try:
                return 1
            except Exception:
                return None
    """, select=["exc"])
    assert codes(report) == ["EXC001"]


def test_broad_except_with_reraise_is_cleanup(lint):
    report = lint("repro/core/fix.py", """
        def load(handle):
            try:
                return handle.read()
            except Exception:
                handle.close()
                raise
    """, select=["exc"])
    assert codes(report) == []


def test_narrow_except_is_clean(lint):
    report = lint("repro/core/fix.py", """
        import pickle

        def load(path):
            try:
                return pickle.load(open(path, "rb"))
            except (OSError, pickle.UnpicklingError, EOFError):
                return None
    """, select=["exc"])
    assert codes(report) == []


def test_mutable_default_flagged(lint):
    report = lint("repro/tls/fix.py", """
        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
    """, select=["exc"])
    assert codes(report) == ["EXC002"]


def test_mutable_call_default_flagged(lint):
    report = lint("repro/tls/fix.py", """
        def collect(item, *, bucket=dict()):
            bucket[item] = True
            return bucket
    """, select=["exc"])
    assert codes(report) == ["EXC002"]


def test_none_default_is_clean(lint):
    report = lint("repro/tls/fix.py", """
        def collect(item, bucket=None):
            bucket = bucket if bucket is not None else []
            bucket.append(item)
            return bucket
    """, select=["exc"])
    assert codes(report) == []


@pytest.mark.parametrize("unit", ["tls", "faults", "netsim"])
def test_bare_runtime_error_flagged_in_sim_layers(lint, unit):
    report = lint(f"repro/{unit}/fix.py", """
        def step(state):
            if state is None:
                raise RuntimeError("impossible state")
    """, select=["exc"])
    assert codes(report) == ["EXC003"]
    assert "untyped" in report.findings[0].message


def test_bare_runtime_error_without_call_flagged(lint):
    report = lint("repro/netsim/fix.py", """
        def step():
            raise RuntimeError
    """, select=["exc"])
    assert codes(report) == ["EXC003"]


def test_named_runtime_error_subclass_is_clean(lint):
    report = lint("repro/netsim/fix.py", """
        class EventLoopStuck(RuntimeError):
            pass

        def step(pending):
            if pending > 10_000:
                raise EventLoopStuck(f"{pending} events pending")
    """, select=["exc"])
    assert codes(report) == []


def test_runtime_error_outside_sim_layers_is_clean(lint):
    # core/analysis run outside the event loop: a RuntimeError there
    # surfaces normally and EXC003 stays out of the way
    report = lint("repro/core/fix.py", """
        def resolve(jobs):
            if jobs is None:
                raise RuntimeError("no job count")
    """, select=["exc"])
    assert codes(report) == []


def test_reraise_in_sim_layer_is_clean(lint):
    report = lint("repro/tls/fix.py", """
        def guarded(op):
            try:
                return op()
            except ValueError:
                raise
    """, select=["exc"])
    assert codes(report) == []
