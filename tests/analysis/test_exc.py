"""EXC checker: broad excepts and mutable defaults."""


def codes(report):
    return [f.code for f in report.findings]


def test_bare_except_flagged(lint):
    report = lint("repro/core/fix.py", """
        def load():
            try:
                return open("x").read()
            except:
                return None
    """, select=["exc"])
    assert codes(report) == ["EXC001"]
    assert "bare" in report.findings[0].message


def test_broad_except_exception_flagged(lint):
    report = lint("repro/core/fix.py", """
        def load():
            try:
                return 1
            except Exception:
                return None
    """, select=["exc"])
    assert codes(report) == ["EXC001"]


def test_broad_except_with_reraise_is_cleanup(lint):
    report = lint("repro/core/fix.py", """
        def load(handle):
            try:
                return handle.read()
            except Exception:
                handle.close()
                raise
    """, select=["exc"])
    assert codes(report) == []


def test_narrow_except_is_clean(lint):
    report = lint("repro/core/fix.py", """
        import pickle

        def load(path):
            try:
                return pickle.load(open(path, "rb"))
            except (OSError, pickle.UnpicklingError, EOFError):
                return None
    """, select=["exc"])
    assert codes(report) == []


def test_mutable_default_flagged(lint):
    report = lint("repro/tls/fix.py", """
        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
    """, select=["exc"])
    assert codes(report) == ["EXC002"]


def test_mutable_call_default_flagged(lint):
    report = lint("repro/tls/fix.py", """
        def collect(item, *, bucket=dict()):
            bucket[item] = True
            return bucket
    """, select=["exc"])
    assert codes(report) == ["EXC002"]


def test_none_default_is_clean(lint):
    report = lint("repro/tls/fix.py", """
        def collect(item, bucket=None):
            bucket = bucket if bucket is not None else []
            bucket.append(item)
            return bucket
    """, select=["exc"])
    assert codes(report) == []
