"""CT1xx interprocedural checker: leaks the intra CT pass cannot see."""

from __future__ import annotations


def codes(report):
    return [f.code for f in report.findings]


def test_secret_branch_across_call_boundary(lint):
    # The callee's parameter is innocuously named, so the intraprocedural
    # checker sees nothing in either function — this is the before/after
    # demonstration that the flow engine closes a real gap.
    source = """
        def mix(flag):
            if flag:
                return 1
            return 0

        def derive(sk):
            return mix(sk[0])
    """
    intra = lint("repro/pqc/helpers.py", source, select=["ct"])
    assert codes(intra) == []

    flow = lint("repro/pqc/helpers.py", source, select=["ctflow"])
    assert codes(flow) == ["CT101"]
    finding = flow.findings[0]
    assert finding.symbol == "derive"
    assert "mix(flag=...)" in finding.message
    assert "branch" in finding.message


def test_secret_loop_bound_and_subscript_in_callee(lint_tree):
    report = lint_tree({
        "repro/pqc/caller.py": """
            from repro.pqc.callee import spin, pick

            def use(secret_key, table):
                spin(secret_key[0])
                return pick(table, secret_key[1])
        """,
        "repro/pqc/callee.py": """
            def spin(count):
                total = 0
                for i in range(count):
                    total += i
                return total

            def pick(table, where):
                return table[where]
        """,
    }, select=["ctflow"])
    assert codes(report) == ["CT102", "CT103"]
    assert all(f.path == "repro/pqc/caller.py" for f in report.findings)


def test_secret_named_callee_param_not_double_reported(lint_tree):
    # `sk` inside the callee is seeded by the intraprocedural checker
    # already; ctflow must stay silent to avoid duplicate findings.
    report = lint_tree({
        "repro/pqc/dup.py": """
            def inner(sk):
                if sk[0]:
                    return 1
                return 0

            def outer(secret_key):
                return inner(secret_key)
        """,
    }, select=["ctflow"])
    assert codes(report) == []


def test_public_argument_is_not_flagged(lint):
    report = lint("repro/pqc/pub.py", """
        def mix(flag):
            if flag:
                return 1
            return 0

        def derive(count):
            return mix(count)
    """, select=["ctflow"])
    assert codes(report) == []


def test_kernel_caller_inherits_allowed_sink_as_note(lint_tree):
    report = lint_tree({
        "repro/crypto/kernels/fastpath.py": """
            from repro.crypto.tables import lookup

            def kernel(block):
                return lookup(block)
        """,
        "repro/crypto/tables.py": """
            TABLE = list(range(256))

            def lookup(v):
                return TABLE[v]  # pqtls: allow[CT003]
        """,
    }, select=["ctflow"])
    assert codes(report) == ["CT110"]
    finding = report.findings[0]
    assert finding.severity.value == "note"
    assert "pragma-allowed" in finding.message
    assert report.ok  # notes never gate
