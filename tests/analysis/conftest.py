"""Fixture helpers: lint synthetic repro-shaped trees in tmp dirs."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.runner import analyze


@pytest.fixture
def lint(tmp_path):
    """Write a snippet as a module inside a fake ``repro`` package and lint it.

    ``lint("repro/pqc/fix.py", source, select=["ct"])`` returns the findings;
    the dotted module name is derived from the written ``__init__.py`` chain,
    so checkers scope exactly as they do on the real tree.
    """

    def _lint(relpath: str, source: str, select: list[str] | None = None,
              baseline=None):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        current = path.parent
        while current != tmp_path:
            (current / "__init__.py").touch()
            current = current.parent
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        report = analyze([path], project_root=tmp_path, select=select,
                         baseline=baseline)
        return report

    return _lint


@pytest.fixture
def lint_tree(tmp_path):
    """Like ``lint`` but for multi-file trees: ``{relpath: source}``."""

    def _lint(files: dict[str, str], select: list[str] | None = None,
              baseline=None, **kwargs):
        paths = []
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            current = path.parent
            while current != tmp_path:
                (current / "__init__.py").touch()
                current = current.parent
            path.write_text(textwrap.dedent(source), encoding="utf-8")
            paths.append(path)
        return analyze(paths, project_root=tmp_path, select=select,
                       baseline=baseline, **kwargs)

    return _lint


@pytest.fixture
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
