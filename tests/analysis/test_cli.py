"""pqtls-lint CLI: exit codes, formats, baseline workflow."""

import json
import textwrap

from repro.analysis.cli import main


def _write_pkg(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    current = path.parent
    while current != tmp_path:
        (current / "__init__.py").touch()
        current = current.parent
    path.write_text(textwrap.dedent(source))
    return path


BAD = """
    def load():
        try:
            return 1
        except Exception:
            return None
"""

CLEAN = """
    def load():
        return 1
"""


def test_exit_one_on_findings_and_zero_on_clean(tmp_path, capsys):
    bad = _write_pkg(tmp_path, "repro/core/bad.py", BAD)
    assert main([str(bad), "--select", "exc"]) == 1
    out = capsys.readouterr().out
    assert "EXC001" in out

    clean = _write_pkg(tmp_path, "repro/core/clean.py", CLEAN)
    assert main([str(clean), "--select", "exc"]) == 0


def test_json_format(tmp_path, capsys):
    bad = _write_pkg(tmp_path, "repro/core/bad.py", BAD)
    assert main([str(bad), "--select", "exc", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["code"] == "EXC001"


def test_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for expected in ("ct", "det", "layer", "wire", "exc", "CT001", "WIRE001"):
        assert expected in out


def test_update_baseline_then_clean_after_justifying(tmp_path, capsys):
    _write_pkg(tmp_path, "repro/core/bad.py", BAD)
    (tmp_path / "pyproject.toml").write_text("")  # marks the project root
    target = tmp_path / "repro"

    assert main([str(target), "--select", "exc", "--update-baseline"]) == 0
    baseline_path = tmp_path / ".pqtls-baseline.json"
    assert baseline_path.exists()

    # unjustified baseline refuses to load
    assert main([str(target), "--select", "exc"]) == 2

    data = json.loads(baseline_path.read_text())
    for entry in data["entries"]:
        entry["justification"] = "accepted for the test"
    baseline_path.write_text(json.dumps(data))
    capsys.readouterr()

    assert main([str(target), "--select", "exc"]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_unknown_selector_is_usage_error(tmp_path, capsys):
    clean = _write_pkg(tmp_path, "repro/core/clean.py", CLEAN)
    assert main([str(clean), "--select", "bogus"]) == 2


def test_update_baseline_preserves_existing_justifications(tmp_path):
    _write_pkg(tmp_path, "repro/core/bad.py", BAD)
    (tmp_path / "pyproject.toml").write_text("")
    target = tmp_path / "repro"
    baseline_path = tmp_path / ".pqtls-baseline.json"

    assert main([str(target), "--select", "exc", "--update-baseline"]) == 0
    data = json.loads(baseline_path.read_text())
    data["entries"][0]["justification"] = "hand written"
    baseline_path.write_text(json.dumps(data))

    assert main([str(target), "--select", "exc", "--update-baseline"]) == 0
    data = json.loads(baseline_path.read_text())
    assert data["entries"][0]["justification"] == "hand written"
