"""FLOW00x checker: DRBG fork labels and declassify() discipline."""

from __future__ import annotations


def codes(report):
    return [f.code for f in report.findings]


def test_fork_label_without_literal_component(lint):
    report = lint("repro/netsim/setup.py", """
        def streams(drbg, names):
            return [drbg.fork(name) for name in names]
    """, select=["flowapi"])
    assert codes(report) == ["FLOW001"]
    assert "literal" in report.findings[0].message


def test_fork_label_with_literal_prefix_is_fine(lint):
    report = lint("repro/netsim/setup.py", """
        def streams(drbg, count):
            return [drbg.fork(f"client-{i}") for i in range(count)]
    """, select=["flowapi"])
    assert codes(report) == []


def test_fork_at_module_level_is_still_checked(lint):
    report = lint("repro/netsim/globals.py", """
        import repro.core.rng as rng

        CHILD = rng.DRBG(b"seed" * 8).fork(str(1234))
    """, select=["flowapi"])
    assert codes(report) == ["FLOW001"]


def test_declassify_of_untainted_value_warns(lint):
    report = lint("repro/crypto/pointless.py", """
        from repro.crypto.constanttime import declassify

        def publish(counter):
            return declassify(counter)
    """, select=["flowapi"])
    assert codes(report) == ["FLOW002"]
    assert report.findings[0].severity.value == "warning"


def test_declassify_of_secret_value_is_fine(lint):
    report = lint("repro/crypto/proper.py", """
        from repro.crypto.constanttime import declassify

        def publish(shared_secret):
            return declassify(shared_secret[0])
    """, select=["flowapi"])
    assert codes(report) == []
