"""DET checker: ambient clocks and entropy sources."""


def codes(report):
    return [f.code for f in report.findings]


def test_wall_clock_outside_obs_flagged(lint):
    report = lint("repro/netsim/fix.py", """
        import time

        def stamp():
            return time.time()
    """, select=["det"])
    assert codes(report) == ["DET001"]


def test_from_time_import_perf_counter_flagged(lint):
    report = lint("repro/core/fix.py", """
        from time import perf_counter

        def stamp():
            return perf_counter()
    """, select=["det"])
    assert codes(report) == ["DET001"]


def test_clock_allowed_inside_obs(lint):
    report = lint("repro/obs/fix.py", """
        import time

        def wall_anchor():
            return time.perf_counter()
    """, select=["det"])
    assert codes(report) == []


def test_random_module_flagged_even_in_obs(lint):
    report = lint("repro/obs/fix.py", """
        import random

        def jitter():
            return random.random()
    """, select=["det"])
    assert codes(report) == ["DET002"]


def test_os_urandom_and_secrets_flagged(lint):
    report = lint("repro/crypto/fix.py", """
        import os
        import secrets

        def bad_key():
            return os.urandom(32) + secrets.token_bytes(32)
    """, select=["det"])
    assert sorted(codes(report)) == ["DET003", "DET003"]


def test_ambient_datetime_now_flagged(lint):
    report = lint("repro/core/fix.py", """
        from datetime import datetime

        def label():
            return datetime.now().isoformat()
    """, select=["det"])
    assert codes(report) == ["DET004"]


def test_drbg_random_method_is_fine(lint):
    report = lint("repro/netsim/fix.py", """
        def jitter(drbg):
            return drbg.random() * 2 - 1
    """, select=["det"])
    assert codes(report) == []


def test_explicit_datetime_is_fine(lint):
    report = lint("repro/core/fix.py", """
        from datetime import datetime, timezone

        def label(epoch_seconds):
            return datetime.fromtimestamp(epoch_seconds, tz=timezone.utc)
    """, select=["det"])
    assert codes(report) == []


def test_multiprocessing_outside_executor_flagged(lint):
    report = lint("repro/core/campaign_helpers.py", """
        import multiprocessing

        def fan_out():
            return multiprocessing.Pool()
    """, select=["det"])
    assert codes(report) == ["DET005"]


def test_concurrent_futures_outside_executor_flagged(lint):
    report = lint("repro/netsim/fix.py", """
        from concurrent.futures import ProcessPoolExecutor

        def pool():
            return ProcessPoolExecutor()
    """, select=["det"])
    assert codes(report) == ["DET005"]


def test_os_cpu_count_outside_executor_flagged(lint):
    report = lint("repro/core/cli_helpers.py", """
        import os

        def default_jobs():
            return os.cpu_count()
    """, select=["det"])
    assert codes(report) == ["DET005"]


def test_process_primitives_allowed_in_executor(lint):
    report = lint("repro/core/executor.py", """
        import multiprocessing
        import os
        from concurrent.futures import ProcessPoolExecutor

        def pool():
            context = multiprocessing.get_context("spawn")
            return ProcessPoolExecutor(max_workers=os.cpu_count(),
                                       mp_context=context)
    """, select=["det"])
    assert codes(report) == []
