"""LEAK00x checker: secret-derived values reaching observability sinks."""

from __future__ import annotations


def codes(report):
    return [f.code for f in report.findings]


def test_secret_in_span_name(lint):
    report = lint("repro/tls/trace.py", """
        def trace_key(tracer, shared_secret):
            tracer.instant("handshake", str(shared_secret))
    """, select=["leak"])
    assert codes(report) == ["LEAK001"]
    assert "shared_secret" in report.findings[0].message


def test_secret_in_metric_name(lint):
    report = lint("repro/crypto/stats.py", """
        def count(metrics, secret_key):
            metrics.inc("kem." + secret_key.hex())
    """, select=["leak"])
    assert codes(report) == ["LEAK002"]


def test_secret_in_recorder_field(lint):
    report = lint("repro/tls/rec.py", """
        def record(recorder, session_secret):
            recorder.event("resume", ticket=session_secret)
    """, select=["leak"])
    assert codes(report) == ["LEAK003"]


def test_secret_formatted_into_exception(lint):
    report = lint("repro/crypto/err.py", """
        def reject(sk):
            raise ValueError(f"bad key material: {sk!r}")
    """, select=["leak"])
    assert codes(report) == ["LEAK004"]


def test_secret_print_is_warning_not_error(lint):
    report = lint("repro/pqc/dbg.py", """
        def dump(signing_key):
            print(signing_key)
    """, select=["leak"])
    assert codes(report) == ["LEAK005"]
    assert report.findings[0].severity.value == "warning"
    assert report.ok  # warnings do not gate


def test_leak_across_call_boundary_reported_at_call_site(lint):
    # `value` is not secret-named, so the callee alone shows nothing;
    # the summary carries the observability sink back to the caller,
    # where the secret is still recognisable.
    report = lint("repro/tls/export.py", """
        def emit(recorder, value):
            recorder.event("session", key=value)

        def publish(recorder, session_secret):
            emit(recorder, session_secret)
    """, select=["leak"])
    assert codes(report) == ["LEAK003"]
    finding = report.findings[0]
    assert finding.symbol == "publish"
    assert "emit(value=...)" in finding.message


def test_public_values_in_observability_are_fine(lint):
    report = lint("repro/tls/okay.py", """
        def trace(tracer, group_name, size):
            tracer.instant("handshake", group_name)
            tracer.counter("bytes", size)
    """, select=["leak"])
    assert codes(report) == []


def test_len_of_secret_is_public(lint):
    report = lint("repro/tls/sizes.py", """
        def trace(tracer, shared_secret):
            tracer.instant("handshake", str(len(shared_secret)))
    """, select=["leak"])
    assert codes(report) == []
