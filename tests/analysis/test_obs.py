"""OBS checker: metric/track naming discipline, ad-hoc stats dicts."""


def codes(report):
    return [f.code for f in report.findings]


def test_bad_metric_name_flagged(lint):
    report = lint("repro/core/fix.py", """
        def run(metrics):
            metrics.counter("Handshake Time")
            metrics.histogram("tls.handshakeTotal")
    """, select=["obs"])
    assert codes(report) == ["OBS001", "OBS001"]
    assert "dotted lowercase" in report.findings[0].message


def test_dotted_lowercase_metric_names_are_clean(lint):
    report = lint("repro/core/fix.py", """
        def run(metrics):
            metrics.counter("cache.hit")
            metrics.gauge("executor.jobs")
            metrics.histogram("tls.handshake.total")
            metrics.inc("faults.injected.loss", 2)
            metrics.observe("record.bytes_on_wire", 512)
    """, select=["obs"])
    assert codes(report) == []


def test_shortcut_calls_check_first_arg_only_with_value(lint):
    # histogram.observe(value) has one arg: not a registry shortcut
    report = lint("repro/core/fix.py", """
        def run(histogram, metrics):
            histogram.observe(0.5)
            metrics.observe("BAD NAME", 0.5)
    """, select=["obs"])
    assert codes(report) == ["OBS001"]


def test_fstring_metric_names_check_literal_chunks(lint):
    report = lint("repro/core/fix.py", """
        def run(metrics, kem, phase):
            metrics.inc(f"pqc.{kem}.encaps", 1)
            metrics.inc(f"PQC {kem} encaps", 1)
    """, select=["obs"])
    assert codes(report) == ["OBS001"]


def test_variable_metric_names_pass(lint):
    # enforced where the literal is written down, not at dynamic call sites
    report = lint("repro/core/fix.py", """
        def run(metrics, name):
            metrics.counter(name)
    """, select=["obs"])
    assert codes(report) == []


def test_bad_track_name_flagged_but_span_display_name_exempt(lint):
    report = lint("repro/netsim/fix.py", """
        def trace(tracer):
            tracer.span("phases", "partA (CH..SH)", 0.0, 1.0)
            tracer.begin("host-cpu", "poly_mul", 0.0)
            tracer.span("Host CPU", "ok_name", 0.0, 1.0)
    """, select=["obs"])
    assert codes(report) == ["OBS002"]
    assert "Host CPU" in report.findings[0].message


def test_adhoc_stats_dict_flagged_outside_obs(lint):
    report = lint("repro/core/fix.py", """
        def run():
            stats = {}
            retry_stats = {"count": 0}
            return stats, retry_stats
    """, select=["obs"])
    assert codes(report) == ["OBS003", "OBS003"]


def test_stats_dict_allowed_inside_obs(lint):
    report = lint("repro/obs/fix.py", """
        def snapshot():
            stats = {"count": 1}
            return stats
    """, select=["obs"])
    assert codes(report) == []


def test_unrelated_dicts_and_names_pass(lint):
    report = lint("repro/core/fix.py", """
        def run():
            config = {"kem": "kyber512"}
            statste = {}
            return config, statste
    """, select=["obs"])
    assert codes(report) == []


def test_non_repro_modules_are_out_of_scope(lint):
    report = lint("tools/fix.py", """
        def run(metrics):
            metrics.counter("BAD NAME")
    """, select=["obs"])
    assert codes(report) == []
