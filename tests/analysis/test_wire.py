"""WIRE checker: registry sizes vs the embedded NIST table."""

from pathlib import Path

from repro.analysis.checkers.wire import KEM_SPEC_SIZES, SIG_SPEC_SIZES, WireSizeChecker
from repro.analysis.context import FileContext
from repro.pqc.registry import KEMS, SIGS


def _pqc_contexts(repo_root: Path) -> list[FileContext]:
    pqc = repo_root / "src" / "repro" / "pqc"
    return [FileContext.load(path, repo_root) for path in sorted(pqc.rglob("*.py"))]


def test_real_registry_matches_spec_table(repo_root):
    findings = list(WireSizeChecker().check_project(_pqc_contexts(repo_root)))
    assert findings == []


def test_spec_table_covers_every_non_hybrid(repo_root):
    from repro.pqc.hybrid import CompositeSignature, HybridKem

    for name, kem in KEMS.items():
        if not isinstance(kem, HybridKem):
            assert name in KEM_SPEC_SIZES, name
    for name, sig in SIGS.items():
        if not isinstance(sig, CompositeSignature):
            assert name in SIG_SPEC_SIZES, name


def test_doctored_table_yields_mismatch_anchored_at_class(repo_root):
    bad = dict(KEM_SPEC_SIZES)
    bad["kyber512"] = (801, 768, 32)  # spec says 800
    findings = list(
        WireSizeChecker(kem_table=bad).check_project(_pqc_contexts(repo_root))
    )
    assert [f.code for f in findings] == ["WIRE001"]
    finding = findings[0]
    assert "kyber512" in finding.message
    assert "pk=800B (spec 801B)" in finding.message
    assert finding.path == "src/repro/pqc/kyber/kem.py"  # the class, not the registry
    assert finding.symbol == "KyberKem"


def test_missing_table_entry_yields_wire002(repo_root):
    pruned = {k: v for k, v in SIG_SPEC_SIZES.items() if k != "falcon512"}
    findings = list(
        WireSizeChecker(sig_table=pruned).check_project(_pqc_contexts(repo_root))
    )
    assert [f.code for f in findings] == ["WIRE002"]
    assert "falcon512" in findings[0].message


def _tls_contexts(repo_root: Path) -> list[FileContext]:
    scenarios = repo_root / "src" / "repro" / "tls" / "scenarios.py"
    return [FileContext.load(scenarios, repo_root)]


def test_session_deltas_clean_on_the_real_module(repo_root):
    ctxs = _pqc_contexts(repo_root) + _tls_contexts(repo_root)
    findings = list(WireSizeChecker().check_project(ctxs))
    assert findings == []


def test_doctored_session_delta_yields_wire005(repo_root):
    from repro.tls.scenarios import declared_wire_deltas

    bad = dict(declared_wire_deltas())
    bad["client_hello_resume_delta"] += 1
    ctxs = _pqc_contexts(repo_root) + _tls_contexts(repo_root)
    findings = list(WireSizeChecker(session_deltas=bad).check_project(ctxs))
    assert [f.code for f in findings] == ["WIRE005"]
    assert "client_hello_resume_delta" in findings[0].message
    assert findings[0].path.endswith("repro/tls/scenarios.py")


def test_session_audit_skips_without_scenarios_context(repo_root):
    # a pqc-only lint run must not import (or flag) the tls layer
    findings = list(
        WireSizeChecker(session_deltas={"client_hello_resume_delta": 0})
        .check_project(_pqc_contexts(repo_root)))
    assert findings == []


def test_skips_trees_without_pqc(tmp_path):
    other = tmp_path / "plain.py"
    other.write_text("x = 1\n")
    ctxs = [FileContext.load(other, tmp_path)]
    assert list(WireSizeChecker().check_project(ctxs)) == []
