"""Runner infrastructure: lint cache, parallel jobs, ANA hygiene, SARIF."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import cli
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.reporters import render_json, render_sarif
from repro.analysis.runner import analyze

TREE = {
    "repro/pqc/kem.py": """
        def decaps(secret_key, ct):
            if secret_key[0]:
                return b"a"
            return b"b"
    """,
    "repro/core/loader.py": """
        def load():
            try:
                return 1
            # pqtls: allow[EXC001] — fallback is the documented contract
            except Exception:
                return None
    """,
    "repro/tls/frames.py": """
        def frame(payload):
            return len(payload).to_bytes(2, "big") + payload
    """,
    "repro/core/walk.py": """
        def walk(items):
            return [item for item in items if item]
    """,
}


def codes(report):
    return [f.code for f in report.findings]


# -- content-addressed cache ------------------------------------------------

def test_warm_run_is_byte_identical_and_fully_cached(lint_tree):
    cold = lint_tree(TREE)
    warm = lint_tree(TREE)
    assert render_json(cold) == render_json(warm)
    assert cold.from_cache == 0
    assert warm.from_cache == len(TREE)
    assert warm.pragma_suppressed == cold.pragma_suppressed == 1
    assert codes(warm) == ["CT001"]


def test_cache_invalidated_by_file_edit(lint_tree):
    first = lint_tree(TREE)
    assert codes(first) == ["CT001"]
    edited = dict(TREE)
    edited["repro/tls/frames.py"] = """
        def frame(payload):
            import time
            return time.time()
    """
    second = lint_tree(edited)
    assert codes(second) == ["CT001", "DET001"]
    # only the edited file misses; its three siblings come from the cache
    assert second.from_cache == len(TREE) - 1


def test_select_is_applied_at_assembly_over_cached_records(lint_tree):
    lint_tree(TREE)  # populate the cache with all-checker records
    only_ct = lint_tree(TREE, select=["ct"])
    assert only_ct.from_cache == len(TREE)
    assert codes(only_ct) == ["CT001"]
    assert only_ct.pragma_suppressed == 0  # EXC001 pragma is out of scope


def test_no_cache_leaves_no_cache_directory(lint_tree, tmp_path):
    report = lint_tree(TREE, use_cache=False)
    assert codes(report) == ["CT001"]
    assert not (tmp_path / ".cache").exists()


# -- parallel checking ------------------------------------------------------

def test_parallel_report_matches_serial_byte_for_byte(lint_tree):
    serial = lint_tree(TREE, jobs=1, use_cache=False)
    fanned = lint_tree(TREE, jobs=4, use_cache=False)
    assert render_json(serial) == render_json(fanned)
    assert codes(fanned) == ["CT001"]
    assert fanned.pragma_suppressed == 1


# -- pragma / baseline hygiene ----------------------------------------------

def test_stale_pragma_reported_live_pragma_not(lint_tree):
    files = dict(TREE)
    files["repro/core/dead.py"] = """
        def f():
            return 1  # pqtls: allow[EXC001]
    """
    report = lint_tree(files, check_pragmas=True)
    ana = [f for f in report.findings if f.code == "ANA001"]
    assert [(f.path, f.line) for f in ana] == [("repro/core/dead.py", 3)]
    assert "suppresses no finding" in ana[0].message


def test_unknown_pragma_code_is_stale_even_when_unselected(lint_tree):
    files = {
        "repro/core/typo.py": """
            def f():
                return 1  # pqtls: allow[CT999]
        """,
        "repro/crypto/live.py": """
            def check(shared_secret):
                if shared_secret[0]:  # pqtls: allow[CT001]
                    return 1
                return 0
        """,
    }
    report = lint_tree(files, select=["det"], check_pragmas=True)
    # CT999: no checker can ever emit it -> stale; the CT001 pragma is
    # unjudgeable under --select det and must not be flagged
    assert codes(report) == ["ANA001"]
    assert "no checker emits this code" in report.findings[0].message


def _write_tree(root, files):
    # anchor find_project_root at the tmp tree so CLI-derived relpaths
    # match the ones analyze() produces with an explicit project_root
    (root / "pyproject.toml").touch()
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        current = path.parent
        while current != root:
            (current / "__init__.py").touch()
            current = current.parent
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def test_ana002_and_prune_baseline_via_cli(tmp_path, capsys):
    _write_tree(tmp_path, {"repro/core/h.py": """
        def load():
            try:
                return 1
            except Exception:
                return None
    """})
    report = analyze([tmp_path / "repro"], project_root=tmp_path)
    assert codes(report) == ["EXC001"]
    baseline = Baseline.from_findings(report.findings, justification="reviewed")
    baseline.entries.append(BaselineEntry(
        code="EXC001", path="repro/core/h.py", symbol="gone",
        message="x", justification="reviewed"))
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path)

    argv = [str(tmp_path / "repro"), "--baseline", str(baseline_path)]
    assert cli.main([*argv, "--check-pragmas"]) == 1
    out = capsys.readouterr().out
    assert "ANA002" in out and "stale baseline entry" in out

    assert cli.main([*argv, "--prune-baseline"]) == 0
    assert "pruned 1 stale entries" in capsys.readouterr().out
    kept = Baseline.load(baseline_path).entries
    assert [e.symbol for e in kept] == ["load"]

    assert cli.main([*argv, "--check-pragmas"]) == 0


# -- SARIF ------------------------------------------------------------------

def test_sarif_document_structure(lint_tree):
    report = lint_tree(TREE)
    doc = json.loads(render_sarif(report))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "pqtls-lint"
    rules = [rule["id"] for rule in driver["rules"]]
    assert rules == ["CT001"]
    result = run["results"][0]
    assert result["ruleId"] == "CT001"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "repro/pqc/kem.py"
    assert location["region"]["startLine"] == 3


def test_sarif_written_by_cli(tmp_path, capsys):
    _write_tree(tmp_path, {"repro/core/h.py": """
        def load():
            try:
                return 1
            except Exception:
                return None
    """})
    sarif_path = tmp_path / "lint.sarif"
    rc = cli.main([str(tmp_path / "repro"), "--sarif", str(sarif_path)])
    capsys.readouterr()
    assert rc == 1
    doc = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["EXC001"]
