"""LAYER checker: the declared import DAG and the sans-io stdlib ban."""


def codes(report):
    return [f.code for f in report.findings]


def test_tls_may_not_import_netsim(lint):
    report = lint("repro/tls/fix.py", """
        from repro.netsim.eventloop import EventLoop
    """, select=["layer"])
    assert codes(report) == ["LAYER001"]
    assert "repro.tls may not import repro.netsim" in report.findings[0].message


def test_pqc_may_not_import_tls(lint):
    report = lint("repro/pqc/fix.py", """
        import repro.tls.records
    """, select=["layer"])
    assert codes(report) == ["LAYER001"]


def test_obs_imports_nothing_from_repro(lint):
    report = lint("repro/obs/fix.py", """
        from repro.crypto.drbg import Drbg
    """, select=["layer"])
    assert codes(report) == ["LAYER001"]


def test_crypto_may_not_use_cache(lint):
    report = lint("repro/crypto/fix.py", """
        from repro import cache
    """, select=["layer"])
    assert codes(report) == ["LAYER001"]


def test_sans_io_units_may_not_import_sockets(lint):
    report = lint("repro/tls/fix.py", """
        import socket
        import asyncio
    """, select=["layer"])
    assert codes(report) == ["LAYER002", "LAYER002"]


def test_netsim_is_simulated_no_real_io(lint):
    report = lint("repro/netsim/fix.py", """
        import asyncio
    """, select=["layer"])
    assert codes(report) == ["LAYER002"]


def test_downward_imports_are_clean(lint):
    report = lint("repro/netsim/fix.py", """
        from repro import cache
        from repro.crypto.drbg import Drbg
        from repro.obs.tracer import NULL_TRACER
        from repro.tls.actions import Send
    """, select=["layer"])
    assert codes(report) == []


def test_core_sits_on_top(lint):
    report = lint("repro/core/fix.py", """
        from repro import cache
        from repro.netsim.testbed import Testbed
        from repro.pqc.registry import KEMS
    """, select=["layer"])
    assert codes(report) == []


def test_relative_imports_resolve_within_unit(lint):
    report = lint("repro/tls/sub/fix.py", """
        from .. import records
    """, select=["layer"])
    assert codes(report) == []
