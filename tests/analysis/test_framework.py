"""Framework plumbing: registry, pragmas, baseline, reporters, runner."""

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.finding import Finding, Severity
from repro.analysis.registry import all_checkers
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import Report, analyze


def test_all_five_domain_checkers_registered():
    names = {checker.name for checker in all_checkers()}
    assert {"ct", "det", "exc", "layer", "wire"} <= names


def test_select_by_name_and_code_prefix():
    assert [c.name for c in all_checkers(["ct"])] == ["ct"]
    assert [c.name for c in all_checkers(["DET001"])] == ["det"]
    assert [c.name for c in all_checkers(["LAYER"])] == ["layer"]
    with pytest.raises(KeyError, match="unknown checker"):
        all_checkers(["nope"])


def test_every_checker_documents_its_codes():
    for checker in all_checkers():
        assert checker.description
        assert checker.codes, checker.name
        for code in checker.codes:
            assert code.isupper() and any(ch.isdigit() for ch in code)


def test_finding_identity_ignores_line_numbers():
    a = Finding(code="CT001", message="m", path="p.py", line=10, symbol="f")
    b = Finding(code="CT001", message="m", path="p.py", line=99, symbol="f")
    assert a.identity() == b.identity()


def test_pragma_same_line_and_standalone_line(lint):
    report = lint("repro/core/fix.py", """
        def load():
            try:
                return 1
            # pqtls: allow[EXC001]
            except Exception:
                return None
    """, select=["exc"])
    assert report.findings == []
    assert report.pragma_suppressed == 1


def test_pragma_inside_string_literal_does_not_suppress(lint):
    report = lint("repro/core/fix.py", '''
        NOTE = "# pqtls: allow[EXC001]"

        def load():
            try:
                return 1
            except Exception:
                return None
    ''', select=["exc"])
    assert [f.code for f in report.findings] == ["EXC001"]


def test_baseline_round_trip_and_stale_detection(tmp_path):
    finding = Finding(code="CT001", message="m", path="p.py", line=3, symbol="f")
    other = Finding(code="CT002", message="n", path="p.py", line=9, symbol="g")
    baseline = Baseline(entries=[
        BaselineEntry(code="CT001", path="p.py", symbol="f", message="m",
                      justification="reviewed"),
        BaselineEntry(code="CT009", path="gone.py", symbol="", message="x",
                      justification="reviewed"),
    ])
    new, suppressed, stale = baseline.split([finding, other])
    assert new == [other]
    assert suppressed == [finding]
    assert [entry.code for entry in stale] == ["CT009"]

    path = tmp_path / "base.json"
    baseline.save(path)
    assert [e.identity() for e in Baseline.load(path).entries] == \
        [e.identity() for e in baseline.entries]


def test_stale_only_reported_for_analyzed_files_and_selected_checkers(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    for part in ("repro", "repro/core"):
        (tmp_path / part / "__init__.py").touch()
    (pkg / "here.py").write_text("def load():\n    return 1\n")
    baseline = Baseline(entries=[
        # entry for a file outside the analyzed subtree: not stale
        BaselineEntry(code="EXC001", path="repro/other/gone.py", symbol="f",
                      message="m", justification="reviewed"),
        # entry for an analyzed file but an unselected checker: not stale
        BaselineEntry(code="CT001", path="repro/core/here.py", symbol="load",
                      message="m", justification="reviewed"),
        # analyzed file + selected checker + no match: genuinely stale
        BaselineEntry(code="EXC001", path="repro/core/here.py", symbol="load",
                      message="m", justification="reviewed"),
    ])
    report = analyze([pkg], project_root=tmp_path, select=["exc"],
                     baseline=baseline)
    assert [e.path for e in report.stale_baseline] == ["repro/core/here.py"]
    assert [e.code for e in report.stale_baseline] == ["EXC001"]


def test_baseline_requires_justifications(tmp_path):
    path = tmp_path / "base.json"
    Baseline(entries=[
        BaselineEntry(code="CT001", path="p.py", symbol="f", message="m",
                      justification="   "),
    ]).save(path)
    with pytest.raises(ValueError, match="justification"):
        Baseline.load(path)


def test_runner_reports_syntax_errors_as_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    report = analyze([bad], project_root=tmp_path)
    assert [f.code for f in report.findings] == ["SYNTAX"]
    assert not report.ok


def test_reporters_render_text_and_json():
    report = Report(findings=[
        Finding(code="DET001", message="wall clock", path="a.py", line=2,
                col=4, symbol="f", checker="det"),
    ], files_checked=3)
    text = render_text(report)
    assert "a.py:2:5: DET001 [error] wall clock" in text
    assert "3 files checked, 1 finding" in text

    payload = json.loads(render_json(report))
    assert payload["files_checked"] == 3
    assert payload["findings"][0]["code"] == "DET001"
    assert payload["findings"][0]["severity"] == "error"


def test_clean_report_summary():
    report = Report(files_checked=1)
    assert report.ok
    assert "clean" in render_text(report)


def test_severity_gating():
    report = Report(findings=[
        Finding(code="X001", message="m", path="p.py", line=1,
                severity=Severity.NOTE),
    ])
    assert report.ok  # notes never gate
