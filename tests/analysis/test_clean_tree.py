"""The contract the CI step enforces: the tree lints clean.

This is the in-process twin of `pqtls-lint src/repro` — every committed
contract violation must be either fixed or carried in the reviewed
baseline, and the baseline itself must stay small, justified, and free
of stale entries.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.runner import analyze


def test_src_repro_lints_clean_with_committed_baseline(repo_root):
    baseline = Baseline.load(repo_root / ".pqtls-baseline.json")
    report = analyze([repo_root / "src" / "repro"], project_root=repo_root,
                     baseline=baseline)
    assert report.ok, "\n".join(
        f"{f.location}: {f.code} {f.message}" for f in report.findings
    )
    assert report.stale_baseline == [], "baseline has stale entries; prune them"


def test_baseline_stays_small_and_justified(repo_root):
    baseline = Baseline.load(repo_root / ".pqtls-baseline.json")
    assert len(baseline.entries) <= 15
    for entry in baseline.entries:
        # a justification must say *why*, not restate the finding
        assert len(entry.justification) > 40, entry.code
