"""Flow engine: module/call-graph resolution, summary fixpoint, CFG taint."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.context import FileContext
from repro.analysis.flow.engine import FlowEngine


def make_engine(tmp_path, files: dict[str, str]) -> FlowEngine:
    """Write a synthetic package tree and build a FlowEngine over it."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        current = path.parent
        while current != tmp_path:
            (current / "__init__.py").touch()
            current = current.parent
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    ctxs = [FileContext.load(tmp_path / relpath, tmp_path)
            for relpath in sorted(files)]
    return FlowEngine(ctxs)


def callees_of(info) -> list[str]:
    return sorted(q for _, qs in info.call_sites for q in qs)


def summary_states(engine: FlowEngine) -> dict[str, tuple]:
    return {q: s.state() for q, s in sorted(engine.summaries.items())}


# -- call graph -------------------------------------------------------------

def test_import_binding_resolves_across_modules(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/pqc/alg.py": """
            def helper(x):
                return x
        """,
        "repro/pqc/use.py": """
            from repro.pqc.alg import helper

            def caller(sk):
                return helper(sk)
        """,
    })
    info = engine.functions.get("repro.pqc.use:caller")
    assert info is not None
    assert callees_of(info) == ["repro.pqc.alg:helper"]


def test_local_definition_beats_name_dispatch(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/pqc/one.py": """
            def encode(v):
                return v

            def run(sk):
                return encode(sk)
        """,
        "repro/pqc/two.py": """
            def encode(v):
                return bytes(v)
        """,
    })
    info = engine.functions.get("repro.pqc.one:run")
    assert callees_of(info) == ["repro.pqc.one:encode"]


def test_self_method_call_resolves_to_own_class(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/tls/client.py": """
            class Client:
                def send(self, payload):
                    return self.encode(payload)

                def encode(self, payload):
                    return bytes(payload)
        """,
    })
    info = engine.functions.get("repro.tls.client:Client.send")
    assert callees_of(info) == ["repro.tls.client:Client.encode"]


def test_functions_in_scope_is_sorted_and_filtered(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/pqc/z.py": "def zee():\n    return 1\n",
        "repro/pqc/a.py": "def aye():\n    return 1\n",
        "repro/tls/t.py": "def tee():\n    return 1\n",
    })
    names = [info.qualname for info in engine.functions_in_scope(("repro.pqc",))]
    assert names == ["repro.pqc.a:aye", "repro.pqc.z:zee"]


# -- summary fixpoint -------------------------------------------------------

def test_mutual_recursion_converges_to_fixpoint(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/pqc/rec.py": """
            def even(sk, n):
                if n == 0:
                    return sk
                return odd(sk, n - 1)

            def odd(sk, n):
                return even(sk, n - 1)
        """,
    }).solve()
    even = engine.summary("repro.pqc.rec:even")
    odd = engine.summary("repro.pqc.rec:odd")
    # the secret parameter flows to the return of both, through the cycle;
    # the loop counter never does
    assert even.flows_to_return == frozenset({0})
    assert odd.flows_to_return == frozenset({0})
    # solve() is idempotent: a second call must not perturb any summary
    before = summary_states(engine)
    engine.solve()
    assert summary_states(engine) == before


def test_transitive_sink_recorded_through_intermediate_callee(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/pqc/chain.py": """
            def sink(v, table):
                return table[v]

            def relay(w, table):
                return sink(w, table)
        """,
    }).solve()
    relay = engine.summary("repro.pqc.chain:relay")
    assert 0 in relay.param_sinks
    assert relay.param_sinks[0].kind == "subscript"


# -- CFG reaching definitions ----------------------------------------------

def _return_env(engine, qualname, profile="summary"):
    analysis = engine.analysis(qualname, profile)
    for stmt, env in analysis.iter_env():
        if isinstance(stmt, ast.Return):
            return env
    raise AssertionError(f"no return statement in {qualname}")


def test_reassignment_kills_taint_but_loop_carries_it(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/pqc/rd.py": """
            def fn(sk, n):
                x = sk
                x = 0
                y = sk
                while n:
                    y = y + 1
                    n = n - 1
                return (x, y)
        """,
    }).solve()
    env = _return_env(engine, "repro.pqc.rd:fn")
    assert env.get("x", frozenset()) == frozenset()       # strong update kills
    assert ("param", 0, "sk") in env["y"]                 # survives the loop
    summary = engine.summary("repro.pqc.rd:fn")
    assert summary.flows_to_return == frozenset({0})


def test_branch_join_preserves_taint_from_either_arm(tmp_path):
    engine = make_engine(tmp_path, {
        "repro/pqc/join.py": """
            def fn(sk, flag):
                v = 0
                if flag:
                    v = sk
                return v
        """,
    }).solve()
    env = _return_env(engine, "repro.pqc.join:fn")
    assert ("param", 0, "sk") in env["v"]
    assert engine.summary("repro.pqc.join:fn").flows_to_return == frozenset({0})


# -- determinism ------------------------------------------------------------

def test_two_fresh_engines_produce_identical_summaries(tmp_path):
    files = {
        "repro/pqc/a.py": """
            from repro.pqc.b import mix

            def top(sk):
                return mix(sk, 3)
        """,
        "repro/pqc/b.py": """
            def mix(data, rounds):
                acc = data
                for _ in range(rounds):
                    acc = acc ^ 1
                return acc
        """,
    }
    first = make_engine(tmp_path / "one", files).solve()
    second = make_engine(tmp_path / "two", files).solve()
    assert summary_states(first) == summary_states(second)
    assert sorted(first.functions.functions) == sorted(second.functions.functions)
