"""CT checker: taint seeding, propagation, sanitizers, scoping."""


def codes(report):
    return [f.code for f in report.findings]


def test_secret_branch_is_flagged(lint):
    report = lint("repro/pqc/fix.py", """
        def decaps(secret_key, ciphertext):
            if secret_key[0] == 1:
                return b"a"
            return b"b"
    """, select=["ct"])
    assert codes(report) == ["CT001"]
    assert "secret_key" in report.findings[0].message
    assert report.findings[0].symbol == "decaps"


def test_taint_propagates_through_assignment_and_while(lint):
    report = lint("repro/crypto/fix.py", """
        def derive(sk):
            acc = sk * 2
            masked = acc ^ 0xFF
            while masked > 0:
                masked -= 1
            return masked
    """, select=["ct"])
    assert codes(report) == ["CT001"]
    assert "'sk'" in report.findings[0].message


def test_secret_loop_bound_flagged(lint):
    report = lint("repro/pqc/fix.py", """
        def expand(seed):
            total = 0
            for i in range(seed % 7):
                total += i
            return total
    """, select=["ct"])
    assert codes(report) == ["CT002"]


def test_secret_subscript_flagged(lint):
    report = lint("repro/pqc/fix.py", """
        TABLE = list(range(256))

        def lookup(private_value, table):
            idx = private_value & 0xFF
            return table[idx]
    """, select=["ct"])
    assert codes(report) == ["CT003"]


def test_keygen_tuple_unpack_taints_only_secret_half(lint):
    report = lint("repro/pqc/fix.py", """
        def roundtrip(scheme, drbg, table):
            pk, sk = scheme.keygen(drbg)
            a = table[len(pk)]     # pk is public: fine
            if sk[0]:              # sk is secret: flagged
                a += 1
            return a
    """, select=["ct"])
    assert codes(report) == ["CT001"]


def test_decaps_result_is_tainted(lint):
    report = lint("repro/pqc/fix.py", """
        def session(kem, key, ct, table):
            shared = kem.decaps(key, ct)
            return table[shared[0]]
    """, select=["ct"])
    assert codes(report) == ["CT003"]


def test_len_and_declassify_sanitize(lint):
    report = lint("repro/pqc/fix.py", """
        from repro.crypto.constanttime import declassify

        def split(secret_key):
            if len(secret_key) < 4:        # length is public
                raise ValueError("short")
            n = declassify(int.from_bytes(secret_key[:4], "big"))
            return secret_key[4: 4 + n]    # declassified index
    """, select=["ct"])
    assert codes(report) == []


def test_sanitizer_on_attribute_projection_does_not_launder(lint):
    report = lint("repro/crypto/fix.py", """
        def split(sk):
            n, m = len(sk.x), declassify(sk.y)
            if m:
                return n
            return 0
    """, select=["ct"])
    assert codes(report) == ["CT001"]


def test_sanitizer_on_subscript_projection_does_not_launder(lint):
    report = lint("repro/crypto/fix.py", """
        def pick(sk):
            n = len(sk[2])
            if n:
                return 1
            return 0
    """, select=["ct"])
    assert codes(report) == ["CT001"]


def test_whole_keypair_binding_stays_secret_through_unpack(lint):
    report = lint("repro/pqc/fix.py", """
        def kp(scheme, drbg):
            keypair = scheme.keygen(drbg)
            pk, s = keypair
            if s:
                return 1
            return 0
    """, select=["ct"])
    assert codes(report) == ["CT001"]


def test_declassify_of_secret_subscript_in_while(lint):
    report = lint("repro/crypto/fix.py", """
        def drain(secret_key):
            m = declassify(secret_key[0])
            while m:
                m -= 1
            return m
    """, select=["ct"])
    assert codes(report) == ["CT001"]


def test_comprehension_target_subscript_flagged(lint):
    report = lint("repro/pqc/fix.py", """
        def compress_like(sk, table):
            return [table[x] for x in sk]
    """, select=["ct"])
    assert codes(report) == ["CT003"]


def test_comprehension_over_public_iterable_is_fine(lint):
    report = lint("repro/pqc/fix.py", """
        def decompress_like(values, table):
            return [table[v] for v in values]
    """, select=["ct"])
    assert codes(report) == []


def test_public_code_outside_crypto_scope_not_checked(lint):
    report = lint("repro/tls/fix.py", """
        def handle(secret_key):
            if secret_key[0]:
                return 1
            return 0
    """, select=["ct"])
    assert codes(report) == []


def test_clean_constant_time_fixture(lint):
    report = lint("repro/crypto/fix.py", """
        def ct_mul(sk, p):
            acc = 0
            for _ in range(256):          # public, fixed bound
                acc = (acc + sk) % p
            return acc
    """, select=["ct"])
    assert codes(report) == []


def test_pragma_allows_a_deliberate_branch(lint):
    report = lint("repro/crypto/fix.py", """
        def check(shared_secret):
            if shared_secret == b"\\x00" * 32:  # pqtls: allow[CT001]
                raise ValueError("low order")
            return shared_secret
    """, select=["ct"])
    assert codes(report) == []
    assert report.pragma_suppressed == 1
