"""Kyber: NTT algebra, sampling, codecs, KEM round trips, FO rejection."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.drbg import Drbg
from repro.pqc.kyber import (
    KYBER512,
    KYBER768,
    KYBER1024,
    KYBER90S512,
    KYBER90S768,
    KYBER90S1024,
)
from repro.pqc.kyber import poly
from repro.pqc.kyber.poly import N, Q

ALL = [KYBER512, KYBER768, KYBER1024, KYBER90S512, KYBER90S768, KYBER90S1024]

coeff_poly = st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=N, max_size=N)


@given(coeff_poly)
def test_ntt_roundtrip(f):
    assert poly.intt(poly.ntt(f)) == f


def _schoolbook_negacyclic(f, g):
    out = [0] * N
    for i in range(N):
        if not f[i]:
            continue
        for j in range(N):
            k = i + j
            if k < N:
                out[k] = (out[k] + f[i] * g[j]) % Q
            else:
                out[k - N] = (out[k - N] - f[i] * g[j]) % Q
    return out


def test_basemul_matches_schoolbook():
    drbg = Drbg("kyber-ntt")
    f = [drbg.randint_below(Q) for _ in range(N)]
    g = [drbg.randint_below(Q) for _ in range(N)]
    via_ntt = poly.intt(poly.basemul(poly.ntt(f), poly.ntt(g)))
    assert via_ntt == _schoolbook_negacyclic(f, g)


@given(coeff_poly, coeff_poly)
def test_poly_add_sub_inverse(f, g):
    assert poly.poly_sub(poly.poly_add(f, g), g) == f


def test_cbd_range_and_length():
    drbg = Drbg("cbd")
    for eta in (2, 3):
        coeffs = poly.cbd(drbg.random_bytes(64 * eta), eta)
        assert len(coeffs) == N
        centered = [c if c <= Q // 2 else c - Q for c in coeffs]
        assert all(-eta <= c <= eta for c in centered)


def test_cbd_input_length_enforced():
    with pytest.raises(ValueError):
        poly.cbd(b"\x00" * 100, 2)


@given(st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=N, max_size=N),
       st.sampled_from([1, 4, 5, 10, 11, 12]))
def test_pack_unpack_roundtrip(values, d):
    masked = [v & ((1 << d) - 1) for v in values]
    assert poly.unpack_bits(poly.pack_bits(masked, d), d) == masked


@given(st.sampled_from([1, 4, 5, 10, 11]))
def test_compress_decompress_error_bound(d):
    drbg = Drbg(f"compress{d}")
    f = [drbg.randint_below(Q) for _ in range(N)]
    recovered = poly.decompress(poly.compress(f, d), d)
    bound = (Q // (1 << (d + 1))) + 1
    for a, b in zip(f, recovered):
        delta = min((a - b) % Q, (b - a) % Q)
        assert delta <= bound


@pytest.mark.parametrize("kem", ALL, ids=lambda k: k.name)
def test_kem_roundtrip_and_sizes(kem):
    drbg = Drbg("kem-" + kem.name)
    pk, sk = kem.keygen(drbg)
    ct, ss_enc = kem.encaps(pk, drbg)
    ss_dec = kem.decaps(sk, ct)
    kem.check_sizes(pk, ct, ss_enc)
    assert ss_enc == ss_dec


EXPECTED_SIZES = {
    "kyber512": (800, 768), "kyber768": (1184, 1088), "kyber1024": (1568, 1568),
    "kyber90s512": (800, 768), "kyber90s768": (1184, 1088), "kyber90s1024": (1568, 1568),
}


@pytest.mark.parametrize("kem", ALL, ids=lambda k: k.name)
def test_spec_wire_sizes(kem):
    pk_len, ct_len = EXPECTED_SIZES[kem.name]
    assert (kem.public_key_bytes, kem.ciphertext_bytes) == (pk_len, ct_len)
    assert kem.shared_secret_bytes == 32


def test_implicit_rejection_on_tampered_ciphertext():
    drbg = Drbg("fo")
    pk, sk = KYBER512.keygen(drbg)
    ct, ss = KYBER512.encaps(pk, drbg)
    for position in (0, 100, len(ct) - 1):
        bad = ct[:position] + bytes([ct[position] ^ 1]) + ct[position + 1:]
        rejected = KYBER512.decaps(sk, bad)
        assert rejected != ss
        assert len(rejected) == 32
        # rejection is deterministic per ciphertext
        assert KYBER512.decaps(sk, bad) == rejected


def test_distinct_encapsulations_yield_distinct_secrets():
    drbg = Drbg("fresh")
    pk, _ = KYBER512.keygen(drbg)
    _, ss1 = KYBER512.encaps(pk, drbg)
    _, ss2 = KYBER512.encaps(pk, drbg)
    assert ss1 != ss2


def test_wrong_length_inputs_rejected():
    drbg = Drbg("len")
    pk, sk = KYBER512.keygen(drbg)
    with pytest.raises(ValueError):
        KYBER512.encaps(pk + b"\x00", drbg)
    with pytest.raises(ValueError):
        KYBER512.decaps(sk, b"\x00" * 767)


def test_90s_variant_interop_is_forbidden():
    """Standard and 90s suites must NOT produce compatible artifacts."""
    drbg = Drbg("suites")
    pk_std, _ = KYBER512.keygen(drbg.fork("a"))
    pk_90s, _ = KYBER90S512.keygen(drbg.fork("a"))
    # same sizes, but the derived keys differ given the same seed stream
    assert len(pk_std) == len(pk_90s)
    assert pk_std != pk_90s


def test_keygen_deterministic_from_drbg():
    assert KYBER768.keygen(Drbg("same")) == KYBER768.keygen(Drbg("same"))
