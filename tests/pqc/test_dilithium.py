"""Dilithium: rounding algebra, hints, codecs, signatures."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.drbg import Drbg
from repro.pqc.dilithium import (
    DILITHIUM2,
    DILITHIUM2_AES,
    DILITHIUM3,
    DILITHIUM5,
)
from repro.pqc.dilithium import poly
from repro.pqc.dilithium.poly import D, N, Q

coeffs = st.integers(min_value=0, max_value=Q - 1)


@given(st.lists(coeffs, min_size=N, max_size=N))
def test_ntt_roundtrip(f):
    assert poly.intt(poly.ntt(f)) == f


def test_ntt_multiplication_matches_schoolbook():
    drbg = Drbg("dil-ntt")
    f = [drbg.randint_below(Q) for _ in range(N)]
    g = [drbg.randint_below(Q) for _ in range(N)]
    ref = [0] * N
    for i in range(N):
        for j in range(N):
            k = i + j
            if k < N:
                ref[k] = (ref[k] + f[i] * g[j]) % Q
            else:
                ref[k - N] = (ref[k - N] - f[i] * g[j]) % Q
    got = poly.intt(poly.pointwise(poly.ntt(f), poly.ntt(g)))
    assert got == ref


@given(coeffs)
def test_power2round_reconstruction(r):
    r1, r0 = poly.power2round(r)
    assert (r1 << D) + r0 == r % Q
    assert -(1 << (D - 1)) < r0 <= (1 << (D - 1))


@given(coeffs, st.sampled_from([2 * (Q - 1) // 88, 2 * (Q - 1) // 32]))
def test_decompose_reconstruction(r, alpha):
    r1, r0 = poly.decompose(r, alpha)
    assert (r1 * alpha + r0) % Q == r % Q
    assert abs(r0) <= alpha // 2 + 1
    assert 0 <= r1 < (Q - 1) // alpha


@given(coeffs, st.integers(min_value=-(Q - 1) // 88, max_value=(Q - 1) // 88),
       st.sampled_from([2 * (Q - 1) // 88, 2 * (Q - 1) // 32]))
def test_hint_recovers_highbits(r, z, alpha):
    """UseHint(MakeHint(z, r+... ), .) == HighBits(r + z): the core lemma."""
    if abs(z) > alpha // 2:
        return
    hint = poly.make_hint(z % Q, r, alpha)
    assert poly.use_hint(hint, r, alpha) == poly.highbits((r + z) % Q, alpha)


@given(st.lists(coeffs, min_size=4, max_size=4), st.sampled_from([3, 4, 13]))
def test_pack_unpack_roundtrip(values, bits):
    masked = [v & ((1 << bits) - 1) for v in values]
    assert poly.unpack_bits(poly.pack_bits(masked, bits), bits, count=4) == masked


def test_centered_and_norm():
    assert poly.centered(Q - 1) == -1
    assert poly.centered(1) == 1
    assert poly.inf_norm([1, Q - 5, 0]) == 5


@pytest.fixture(scope="module")
def d2_keypair():
    return DILITHIUM2.keygen(Drbg("d2-key"))


def test_sign_verify_roundtrip(d2_keypair):
    pk, sk = d2_keypair
    drbg = Drbg("d2-sign")
    sig = DILITHIUM2.sign(sk, b"message", drbg)
    assert len(sig) == DILITHIUM2.signature_bytes
    assert DILITHIUM2.verify(pk, b"message", sig)
    assert not DILITHIUM2.verify(pk, b"messagx", sig)


def test_tampered_signature_rejected(d2_keypair):
    pk, sk = d2_keypair
    sig = DILITHIUM2.sign(sk, b"m", Drbg("t"))
    for pos in (0, 100, len(sig) - 1):
        bad = sig[:pos] + bytes([sig[pos] ^ 1]) + sig[pos + 1:]
        assert not DILITHIUM2.verify(pk, b"m", bad)


def test_wrong_key_rejected(d2_keypair):
    pk, sk = d2_keypair
    other_pk, _ = DILITHIUM2.keygen(Drbg("other"))
    sig = DILITHIUM2.sign(sk, b"m", Drbg("w"))
    assert not DILITHIUM2.verify(other_pk, b"m", sig)


def test_randomized_signing(d2_keypair):
    pk, sk = d2_keypair
    drbg = Drbg("rand")
    s1 = DILITHIUM2.sign(sk, b"m", drbg)
    s2 = DILITHIUM2.sign(sk, b"m", drbg)
    assert s1 != s2 and DILITHIUM2.verify(pk, b"m", s1) and DILITHIUM2.verify(pk, b"m", s2)


def test_length_validation(d2_keypair):
    pk, sk = d2_keypair
    sig = DILITHIUM2.sign(sk, b"m", Drbg("l"))
    assert not DILITHIUM2.verify(pk, b"m", sig[:-1])
    assert not DILITHIUM2.verify(pk[:-1], b"m", sig)


def test_hint_packing_roundtrip_and_canonicality(d2_keypair):
    scheme = DILITHIUM2
    hints = [[0] * N for _ in range(scheme._p.k)]
    hints[0][3] = hints[0][250] = hints[2][7] = 1
    packed = scheme._pack_hint(hints)
    assert len(packed) == scheme._p.omega + scheme._p.k
    assert scheme._unpack_hint(packed) == hints
    # non-canonical encodings must be rejected
    corrupt = bytearray(packed)
    corrupt[scheme._p.omega] = scheme._p.omega + 1  # count beyond omega
    assert scheme._unpack_hint(bytes(corrupt)) is None
    corrupt = bytearray(packed)
    corrupt[5] = 60  # garbage in the zero-padding region (3 hints used)
    assert scheme._unpack_hint(bytes(corrupt)) is None


def test_sample_in_ball_shape():
    c = DILITHIUM2._sample_in_ball(b"\x07" * 32)
    nonzero = [x for x in c if x != 0]
    assert len(nonzero) == DILITHIUM2._p.tau
    assert all(x in (1, Q - 1) for x in nonzero)


EXPECTED = {
    "dilithium2": (1312, 2420),
    "dilithium3": (1952, 3293),
    "dilithium5": (2592, 4595),
}


@pytest.mark.parametrize("scheme", [DILITHIUM2, DILITHIUM3, DILITHIUM5],
                         ids=lambda s: s.name)
def test_spec_wire_sizes(scheme):
    assert (scheme.public_key_bytes, scheme.signature_bytes) == EXPECTED[scheme.name]


@pytest.mark.parametrize("scheme", [DILITHIUM3, DILITHIUM5, DILITHIUM2_AES],
                         ids=lambda s: s.name)
def test_higher_levels_and_aes_roundtrip(scheme):
    drbg = Drbg("lvl-" + scheme.name)
    pk, sk = scheme.keygen(drbg)
    sig = scheme.sign(sk, b"level test", drbg)
    assert len(sig) == scheme.signature_bytes
    assert scheme.verify(pk, b"level test", sig)
    assert not scheme.verify(pk, b"level tesT", sig)


def test_aes_variant_same_sizes_different_keys():
    std = DILITHIUM2.keygen(Drbg("suite"))
    aes = DILITHIUM2_AES.keygen(Drbg("suite"))
    assert len(std[0]) == len(aes[0])
    assert std[0] != aes[0]
