"""Runtime wire-size cross-check: the dynamic twin of the WIRE checker.

The static WIRE audit compares *declared* ``*_bytes`` against the
embedded NIST table; this suite proves the *generated* artifacts match
the declarations for every registered algorithm — public keys,
ciphertexts, and shared secrets by running a fresh exchange per KEM,
public keys and signatures via the disk-cached credentials the
experiments already use (keygen + CA issuance for the slow schemes is
exactly what the creds cache exists to amortise).
"""

import pytest

from repro.crypto.drbg import Drbg
from repro.netsim.scripted import load_credentials
from repro.pqc.registry import KEMS, SIGS, get_kem, get_sig


@pytest.mark.parametrize("name", sorted(KEMS))
def test_kem_artifacts_have_declared_sizes(name):
    kem = get_kem(name)
    drbg = Drbg(f"wire-size-check:{name}")
    public_key, secret_key = kem.keygen(drbg)
    ciphertext, shared = kem.encaps(public_key, drbg)
    recovered = kem.decaps(secret_key, ciphertext)

    assert len(public_key) == kem.public_key_bytes
    assert len(ciphertext) == kem.ciphertext_bytes
    assert len(shared) == kem.shared_secret_bytes
    assert recovered == shared  # the exchange itself must still work


@pytest.mark.parametrize("name", sorted(SIGS))
def test_sig_artifacts_have_declared_sizes(name):
    sig = get_sig(name)
    # cert.public_key is the leaf key; cert.signature is a real signature
    # by the same scheme (the CA signs with it) — both produced by keygen/
    # sign, both cached on disk with the experiments' credentials
    cert, _server_sk, store = load_credentials(name)

    assert len(cert.public_key) == sig.public_key_bytes
    assert len(cert.signature) == sig.signature_bytes
    assert sig.verify(store.roots[cert.issuer][1], cert.tbs(), cert.signature)
