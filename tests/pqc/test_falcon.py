"""Falcon: NTT, NTRUSolve, codecs, signatures (512 by default, 1024 slow)."""

import pytest

from repro.crypto.drbg import Drbg
from repro.pqc.falcon import FALCON512, FALCON1024
from repro.pqc.falcon import polyint as pz
from repro.pqc.falcon.ntrugen import NtruSolveError, ntru_solve, verify_ntru
from repro.pqc.falcon.ntt import Q, FalconNtt
from repro.pqc.falcon.sig import _gaussian_small, _hash_to_point


def test_ntt_roundtrip_and_multiplication():
    ntt = FalconNtt(64)
    drbg = Drbg("falcon-ntt")
    a = [drbg.randint_below(Q) for _ in range(64)]
    b = [drbg.randint_below(Q) for _ in range(64)]
    assert ntt.intt(ntt.ntt(a)) == a
    assert ntt.mul(a, b) == [c % Q for c in pz.neg_mul(a, b)]


def test_ntt_division():
    ntt = FalconNtt(64)
    drbg = Drbg("falcon-div")
    b = [drbg.randint(1, Q - 1) for _ in range(64)]
    a = [drbg.randint_below(Q) for _ in range(64)]
    if ntt.is_invertible(b):
        q = ntt.div(a, b)
        assert ntt.mul(q, b) == [c % Q for c in a]


def test_polyint_algebra():
    a = [1, 2, 3, 4]
    b = [5, 0, -1, 2]
    # negacyclic: x^4 = -1
    prod = pz.neg_mul(a, b)
    assert len(prod) == 4
    assert pz.sub(pz.add(a, b), b) == a
    # adjoint is an involution
    assert pz.adjoint(pz.adjoint(a)) == a
    # galois conjugate a(-x) twice is identity
    assert pz.galois_conjugate(pz.galois_conjugate(b)) == b


def test_field_norm_degree_halving_identity():
    """N(f)(x^2) == f(x) * f(-x) for random small f."""
    drbg = Drbg("norm")
    f = [drbg.randint(-5, 5) for _ in range(16)]
    norm = pz.field_norm(f)
    assert len(norm) == 8
    lifted = pz.lift_twist(norm)
    direct = pz.neg_mul(f, pz.galois_conjugate(f))
    assert lifted == direct


@pytest.mark.parametrize("n", [4, 16, 64])
def test_ntru_solve_satisfies_equation(n):
    drbg = Drbg(f"ntru{n}")
    for _ in range(12):
        f = [_gaussian_small(drbg, 4.0) for _ in range(n)]
        g = [_gaussian_small(drbg, 4.0) for _ in range(n)]
        try:
            F, G = ntru_solve(f, g)
        except NtruSolveError:
            continue
        assert verify_ntru(f, g, F, G)
        return
    pytest.fail("no solvable (f, g) found in 12 attempts")


def test_ntru_solve_unsolvable_raises():
    # f = g = 2: gcd of constant terms is 2 at the recursion bottom
    with pytest.raises(NtruSolveError):
        ntru_solve([2], [2])


def test_hash_to_point_uniform_range_and_determinism():
    c = _hash_to_point(b"salt-and-message", 512)
    assert len(c) == 512
    assert all(0 <= x < Q for x in c)
    assert c == _hash_to_point(b"salt-and-message", 512)
    assert c != _hash_to_point(b"salt-and-messagf", 512)


@pytest.fixture(scope="module")
def falcon512_keys():
    return FALCON512.keygen(Drbg("falcon512-test-key"))


def test_falcon512_sign_verify(falcon512_keys):
    pk, sk = falcon512_keys
    drbg = Drbg("sign")
    assert len(pk) == 897
    sig = FALCON512.sign(sk, b"message", drbg)
    assert len(sig) == 666
    assert FALCON512.verify(pk, b"message", sig)
    assert not FALCON512.verify(pk, b"messagx", sig)


def test_falcon512_tamper_rejection(falcon512_keys):
    pk, sk = falcon512_keys
    sig = FALCON512.sign(sk, b"m", Drbg("t"))
    for pos in (0, 1, 50, 400):
        bad = sig[:pos] + bytes([sig[pos] ^ 1]) + sig[pos + 1:]
        assert not FALCON512.verify(pk, b"m", bad)


def test_falcon512_randomized_salts(falcon512_keys):
    pk, sk = falcon512_keys
    drbg = Drbg("salty")
    s1 = FALCON512.sign(sk, b"m", drbg)
    s2 = FALCON512.sign(sk, b"m", drbg)
    assert s1 != s2
    assert FALCON512.verify(pk, b"m", s1) and FALCON512.verify(pk, b"m", s2)


def test_falcon512_wrong_key(falcon512_keys):
    pk, sk = falcon512_keys
    sig = FALCON512.sign(sk, b"m", Drbg("w"))
    other_pk, _ = FALCON512.keygen(Drbg("other-falcon"))
    assert not FALCON512.verify(other_pk, b"m", sig)


def test_compress_decompress_roundtrip(falcon512_keys):
    scheme = FALCON512
    drbg = Drbg("comp")
    values = [drbg.randint(-150, 150) for _ in range(512)]
    packed = scheme._compress(values, 625)
    assert packed is not None and len(packed) == 625
    assert scheme._decompress(packed, 512) == values


def test_compress_budget_overflow_returns_none():
    scheme = FALCON512
    huge = [4000] * 512  # ~40 unary bits each: cannot fit
    assert scheme._compress(huge, 625) is None


def test_compress_rejects_out_of_range_magnitude():
    assert FALCON512._compress([1 << 12] + [0] * 511, 625) is None


def test_decompress_rejects_noncanonical_padding(falcon512_keys):
    packed = bytearray(FALCON512._compress([1] * 512, 625))
    packed[-1] |= 0x01  # garbage beyond the last coefficient
    assert FALCON512._decompress(bytes(packed), 512) is None


def test_pk_codec_roundtrip(falcon512_keys):
    pk, _ = falcon512_keys
    h = FALCON512._decode_pk(pk)
    assert FALCON512._encode_pk(h) == pk
    with pytest.raises(ValueError):
        FALCON512._decode_pk(pk[:-1])
    with pytest.raises(ValueError):
        FALCON512._decode_pk(b"\x0A" + pk[1:])  # wrong logn header


def test_verify_rejects_malformed_inputs(falcon512_keys):
    pk, sk = falcon512_keys
    sig = FALCON512.sign(sk, b"m", Drbg("mal"))
    assert not FALCON512.verify(pk, b"m", sig[:-1])
    assert not FALCON512.verify(pk, b"m", bytes([0x3A]) + sig[1:])  # bad header


@pytest.mark.slow
def test_falcon1024_full_cycle():
    drbg = Drbg("falcon1024-test")
    pk, sk = FALCON1024.keygen(drbg)
    assert len(pk) == 1793
    sig = FALCON1024.sign(sk, b"large parameter set", drbg)
    assert len(sig) == 1280
    assert FALCON1024.verify(pk, b"large parameter set", sig)
    assert not FALCON1024.verify(pk, b"Large parameter set", sig)
