"""SPHINCS+: WOTS/FORS component identities, toy instances, full 128f (slow)."""

import pytest

from repro.crypto.drbg import Drbg
from repro.pqc.sphincs import SPHINCS128, SPHINCS192, SPHINCS256
from repro.pqc.sphincs import fors, wots
from repro.pqc.sphincs.address import TREE, WOTS_HASH, Adrs
from repro.pqc.sphincs.backend import HarakaBackend, ShakeBackend, make_backend
from repro.pqc.sphincs.core import SphincsParams, SphincsSignature

TOY = SphincsParams(n=16, h=8, d=2, a=3, k=8)


def _backend(kind="shake", n=16, seed=b"\x42" * 16):
    backend = make_backend(kind, n)
    backend.set_pk_seed(seed)
    return backend


# -- addresses ----------------------------------------------------------------

def test_adrs_layout():
    adrs = Adrs()
    adrs.layer, adrs.tree, adrs.type = 3, 12345, TREE
    adrs.w1, adrs.w2, adrs.w3 = 1, 2, 3
    raw = adrs.to_bytes()
    assert len(raw) == 32
    assert raw[3] == 3                       # layer
    assert int.from_bytes(raw[4:16], "big") == 12345
    assert raw[19] == TREE


def test_adrs_set_type_clears_words():
    adrs = Adrs()
    adrs.w1 = adrs.w2 = adrs.w3 = 9
    adrs.set_type(TREE)
    assert (adrs.w1, adrs.w2, adrs.w3) == (0, 0, 0)


def test_adrs_copy_is_independent():
    adrs = Adrs()
    adrs.w1 = 7
    clone = adrs.copy()
    clone.w1 = 8
    assert adrs.w1 == 7


# -- WOTS+ ----------------------------------------------------------------------

def test_wots_lengths():
    assert wots.wots_lengths(16) == (32, 3, 35)
    assert wots.wots_lengths(24) == (48, 3, 51)
    assert wots.wots_lengths(32) == (64, 3, 67)


def test_message_digits_checksum():
    digits = wots.message_digits(b"\x00" * 16, 16)
    assert len(digits) == 35
    assert digits[:32] == [0] * 32
    # checksum of all-zero digits is len1*(w-1) = 480 = 0x1E0
    assert digits[32:] == [1, 14, 0]


def test_chain_composition():
    backend = _backend()
    adrs = Adrs()
    one_shot = wots.chain(backend, b"\x01" * 16, 0, 10, adrs.copy())
    two_step = wots.chain(backend, wots.chain(backend, b"\x01" * 16, 0, 4, adrs.copy()),
                          4, 6, adrs.copy())
    assert one_shot == two_step


@pytest.mark.parametrize("kind", ["shake", "haraka"])
def test_wots_sign_verify_identity(kind):
    backend = _backend(kind)
    sk_seed = b"\x11" * 16
    adrs = Adrs()
    adrs.type = WOTS_HASH
    adrs.w1 = 5
    public = wots.wots_pk_gen(backend, sk_seed, adrs.copy())
    for message in (b"\x00" * 16, b"\xff" * 16, bytes(range(16))):
        sig = wots.wots_sign(backend, message, sk_seed, adrs.copy())
        assert wots.wots_pk_from_sig(backend, sig, message, adrs.copy()) == public


def test_wots_wrong_message_gives_wrong_pk():
    backend = _backend()
    sk_seed = b"\x11" * 16
    adrs = Adrs()
    public = wots.wots_pk_gen(backend, sk_seed, adrs.copy())
    sig = wots.wots_sign(backend, b"\x01" * 16, sk_seed, adrs.copy())
    assert wots.wots_pk_from_sig(backend, sig, b"\x02" * 16, adrs.copy()) != public


# -- FORS -------------------------------------------------------------------------

def test_fors_message_indices():
    indices = fors.message_indices(b"\xff\x00\xff", 4, 6)
    assert indices == [0b111111, 0b110000, 0b000011, 0b111111]


def test_fors_sign_verify_identity():
    backend = _backend()
    sk_seed = b"\x22" * 16
    adrs = Adrs()
    adrs.tree = 77
    adrs.w1 = 3
    md = bytes(range(8))
    sig = fors.fors_sign(backend, md, sk_seed, adrs.copy(), k=8, a=3)
    assert len(sig) == 8 * (3 + 1) * 16
    pk = fors.fors_pk_from_sig(backend, sig, md, adrs.copy(), k=8, a=3)
    sig2 = fors.fors_sign(backend, md, sk_seed, adrs.copy(), k=8, a=3)
    assert fors.fors_pk_from_sig(backend, sig2, md, adrs.copy(), k=8, a=3) == pk


def test_fors_tampered_signature_changes_pk():
    backend = _backend()
    sk_seed = b"\x22" * 16
    adrs = Adrs()
    md = bytes(range(8))
    sig = bytearray(fors.fors_sign(backend, md, sk_seed, adrs.copy(), k=8, a=3))
    good = fors.fors_pk_from_sig(backend, bytes(sig), md, adrs.copy(), k=8, a=3)
    sig[0] ^= 1
    assert fors.fors_pk_from_sig(backend, bytes(sig), md, adrs.copy(), k=8, a=3) != good


# -- full scheme (toy parameters) ----------------------------------------------------

@pytest.mark.parametrize("kind", ["shake", "haraka"])
def test_toy_instance_roundtrip(kind):
    scheme = SphincsSignature("toy", TOY, nist_level=1, backend=kind)
    drbg = Drbg("toy-" + kind)
    pk, sk = scheme.keygen(drbg)
    assert len(pk) == 32
    sig = scheme.sign(sk, b"message", drbg)
    assert len(sig) == scheme.signature_bytes
    assert scheme.verify(pk, b"message", sig)
    assert not scheme.verify(pk, b"messagx", sig)


def test_toy_tamper_positions():
    scheme = SphincsSignature("toy", TOY, nist_level=1, backend="shake")
    drbg = Drbg("toy-tamper")
    pk, sk = scheme.keygen(drbg)
    sig = scheme.sign(sk, b"m", drbg)
    for pos in (0, 20, len(sig) // 2, len(sig) - 1):
        bad = sig[:pos] + bytes([sig[pos] ^ 1]) + sig[pos + 1:]
        assert not scheme.verify(pk, b"m", bad)


def test_toy_wrong_key():
    scheme = SphincsSignature("toy", TOY, nist_level=1, backend="shake")
    pk, sk = scheme.keygen(Drbg("a"))
    pk2, _ = scheme.keygen(Drbg("b"))
    sig = scheme.sign(sk, b"m", Drbg("c"))
    assert not scheme.verify(pk2, b"m", sig)


def test_signature_size_formula():
    assert SPHINCS128.signature_bytes == 17088
    assert SPHINCS192.signature_bytes == 35664
    assert SPHINCS256.signature_bytes == 49856
    assert SPHINCS128.public_key_bytes == 32
    assert SPHINCS256.public_key_bytes == 64


def test_digest_splitting_ranges():
    scheme = SphincsSignature("toy", TOY, nist_level=1, backend="shake")
    digest = bytes(range(scheme.params.digest_bytes))
    md, idx_tree, idx_leaf = scheme._split_digest(digest)
    assert len(md) == (TOY.k * TOY.a + 7) // 8
    assert 0 <= idx_tree < (1 << (TOY.h - TOY.tree_height))
    assert 0 <= idx_leaf < (1 << TOY.tree_height)


def test_backend_keying_changes_everything():
    b1 = _backend("haraka", seed=b"\x01" * 16)
    b2 = _backend("haraka", seed=b"\x02" * 16)
    adrs = Adrs()
    assert b1.thash(adrs, b"\x00" * 16) != b2.thash(adrs, b"\x00" * 16)


def test_haraka_backend_rejects_large_n():
    with pytest.raises(ValueError):
        HarakaBackend(48)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        make_backend("sha2", 16)


def test_shake_backend_seed_separation():
    b = ShakeBackend(16)
    b.set_pk_seed(b"\x00" * 16)
    adrs = Adrs()
    h1 = b.thash(adrs, b"data")
    b.set_pk_seed(b"\x01" * 16)
    assert b.thash(adrs, b"data") != h1


@pytest.mark.slow
def test_full_sphincs128_haraka_roundtrip():
    drbg = Drbg("sphincs-full")
    pk, sk = SPHINCS128.keygen(drbg)
    sig = SPHINCS128.sign(sk, b"full-size message", drbg)
    assert len(sig) == 17088
    assert SPHINCS128.verify(pk, b"full-size message", sig)
    assert not SPHINCS128.verify(pk, b"full-size messagE", sig)
