"""Hybrid KEMs and composite signatures: combiner semantics."""

import pytest

from repro.crypto.drbg import Drbg
from repro.pqc.classical import P256_ECDSA, P256_KEM, X25519
from repro.pqc.hybrid import CompositeSignature, HybridKem
from repro.pqc.kyber import KYBER512
from repro.pqc.dilithium import DILITHIUM2


@pytest.fixture(scope="module")
def hybrid_kem():
    return HybridKem("p256_kyber512", P256_KEM, KYBER512)


@pytest.fixture(scope="module")
def composite_sig():
    return CompositeSignature("p256_dilithium2", P256_ECDSA, DILITHIUM2)


def test_hybrid_sizes_are_additive(hybrid_kem):
    assert hybrid_kem.public_key_bytes == P256_KEM.public_key_bytes + KYBER512.public_key_bytes
    assert hybrid_kem.ciphertext_bytes == P256_KEM.ciphertext_bytes + KYBER512.ciphertext_bytes
    assert hybrid_kem.shared_secret_bytes == (
        P256_KEM.shared_secret_bytes + KYBER512.shared_secret_bytes)


def test_hybrid_roundtrip(hybrid_kem):
    drbg = Drbg("hyb")
    pk, sk = hybrid_kem.keygen(drbg)
    ct, ss = hybrid_kem.encaps(pk, drbg)
    hybrid_kem.check_sizes(pk, ct, ss)
    assert hybrid_kem.decaps(sk, ct) == ss


def test_hybrid_secret_is_concatenation(hybrid_kem):
    """Both component secrets must contribute (combiner = concatenation)."""
    drbg = Drbg("concat")
    pk, sk = hybrid_kem.keygen(drbg)
    ct, ss = hybrid_kem.encaps(pk, drbg)
    split = P256_KEM.shared_secret_bytes
    classical_part, pq_part = ss[:split], ss[split:]
    assert len(classical_part) == 32 and len(pq_part) == 32
    assert classical_part != pq_part


def test_hybrid_tampering_either_half_changes_secret(hybrid_kem):
    drbg = Drbg("tamper")
    pk, sk = hybrid_kem.keygen(drbg)
    ct, ss = hybrid_kem.encaps(pk, drbg)
    classical_len = P256_KEM.ciphertext_bytes
    # tamper the PQ half -> Kyber implicit rejection changes the PQ secret
    bad_pq = ct[:classical_len] + bytes([ct[classical_len] ^ 1]) + ct[classical_len + 1:]
    assert hybrid_kem.decaps(sk, bad_pq) != ss
    # tamper the classical half -> invalid EC point is rejected outright
    bad_ec = bytes([ct[0] ^ 1]) + ct[1:]
    with pytest.raises(ValueError):
        hybrid_kem.decaps(sk, bad_ec)


def test_hybrid_level_is_pq_level(hybrid_kem):
    assert hybrid_kem.nist_level == KYBER512.nist_level


def test_hybrid_length_validation(hybrid_kem):
    drbg = Drbg("lenv")
    pk, sk = hybrid_kem.keygen(drbg)
    with pytest.raises(ValueError):
        hybrid_kem.encaps(pk[:-1], drbg)
    with pytest.raises(ValueError):
        hybrid_kem.decaps(sk, b"\x00" * 10)


def test_x25519_hybrid_variant():
    kem = HybridKem("x25519_kyber512", X25519, KYBER512)
    drbg = Drbg("xk")
    pk, sk = kem.keygen(drbg)
    ct, ss = kem.encaps(pk, drbg)
    assert kem.decaps(sk, ct) == ss
    assert len(pk) == 32 + 800


# -- composite signatures -----------------------------------------------------

def test_composite_roundtrip(composite_sig):
    drbg = Drbg("comp")
    pk, sk = composite_sig.keygen(drbg)
    sig = composite_sig.sign(sk, b"dual signed", drbg)
    assert len(sig) == composite_sig.signature_bytes
    assert composite_sig.verify(pk, b"dual signed", sig)
    assert not composite_sig.verify(pk, b"dual signeD", sig)


def test_composite_sizes_are_additive(composite_sig):
    assert composite_sig.public_key_bytes == (
        P256_ECDSA.public_key_bytes + DILITHIUM2.public_key_bytes)
    assert composite_sig.signature_bytes == (
        P256_ECDSA.signature_bytes + DILITHIUM2.signature_bytes)


def test_composite_requires_both_signatures_valid(composite_sig):
    drbg = Drbg("both")
    pk, sk = composite_sig.keygen(drbg)
    sig = composite_sig.sign(sk, b"m", drbg)
    split = P256_ECDSA.signature_bytes
    # break only the classical half
    bad_classical = bytes([sig[0] ^ 1]) + sig[1:]
    assert not composite_sig.verify(pk, b"m", bad_classical)
    # break only the PQ half
    bad_pq = sig[:split] + bytes([sig[split] ^ 1]) + sig[split + 1:]
    assert not composite_sig.verify(pk, b"m", bad_pq)


def test_composite_length_validation(composite_sig):
    drbg = Drbg("clen")
    pk, sk = composite_sig.keygen(drbg)
    sig = composite_sig.sign(sk, b"m", drbg)
    assert not composite_sig.verify(pk, b"m", sig[:-1])
    assert not composite_sig.verify(pk[:-1], b"m", sig)
