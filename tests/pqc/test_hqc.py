"""HQC: GF(256), Reed–Solomon, Reed–Muller, and the KEM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import Drbg
from repro.pqc.hqc import HQC128, HQC192, HQC256
from repro.pqc.hqc.gf256 import EXP, LOG, gf_div, gf_inv, gf_mul, gf_pow, poly_eval, poly_mul
from repro.pqc.hqc.reedmuller import rm_decode, rm_encode
from repro.pqc.hqc.reedsolomon import ReedSolomon


# -- GF(256) --------------------------------------------------------------------

@given(st.integers(1, 255))
def test_gf_inverse(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
def test_gf_mul_associative_distributive(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))
    assert gf_mul(a ^ b, c) == gf_mul(a, c) ^ gf_mul(b, c)


def test_gf_tables_consistent():
    assert EXP[0] == 1
    assert all(LOG[EXP[i]] == i for i in range(255))
    assert gf_pow(2, 255) == 1


def test_gf_div_and_zero_handling():
    assert gf_div(gf_mul(7, 9), 9) == 7
    assert gf_mul(0, 123) == 0
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


def test_poly_eval_horner():
    # p(x) = 3 + 2x over GF(256): p(1) = 1, p(0) = 3
    assert poly_eval([3, 2], 0) == 3
    assert poly_eval([3, 2], 1) == 1


def test_poly_mul_degree():
    assert len(poly_mul([1, 1], [1, 1, 1])) == 4


# -- Reed–Solomon -----------------------------------------------------------------

@pytest.mark.parametrize("n,k", [(46, 16), (56, 24), (90, 32)])
def test_rs_clean_roundtrip(n, k):
    rs = ReedSolomon(n, k)
    msg = bytes(range(k))
    cw = rs.encode(msg)
    assert len(cw) == n
    assert rs.decode(cw) == msg


@settings(max_examples=15)
@given(st.data())
def test_rs_corrects_up_to_delta_errors(data):
    rs = ReedSolomon(46, 16)
    drbg = Drbg(b"rs-prop" + bytes([data.draw(st.integers(0, 255))]))
    msg = drbg.random_bytes(16)
    cw = bytearray(rs.encode(msg))
    nerr = data.draw(st.integers(min_value=0, max_value=rs.delta))
    for pos in drbg.sample_distinct(46, nerr):
        cw[pos] ^= drbg.randint(1, 255)
    assert rs.decode(bytes(cw)) == msg


def test_rs_detects_overload():
    rs = ReedSolomon(46, 16)
    drbg = Drbg("rs-overload")
    cw = bytearray(rs.encode(bytes(16)))
    for pos in drbg.sample_distinct(46, 2 * rs.delta + 4):
        cw[pos] ^= drbg.randint(1, 255)
    # beyond-radius errors either raise or return a wrong message; they
    # must never silently return the original
    try:
        decoded = rs.decode(bytes(cw))
    except ValueError:
        return
    assert decoded != bytes(16)


def test_rs_parameter_validation():
    with pytest.raises(ValueError):
        ReedSolomon(46, 17)  # odd n-k
    with pytest.raises(ValueError):
        ReedSolomon(300, 200)  # n > 255
    rs = ReedSolomon(46, 16)
    with pytest.raises(ValueError):
        rs.encode(bytes(15))
    with pytest.raises(ValueError):
        rs.decode(bytes(45))


def test_rs_codewords_linear():
    rs = ReedSolomon(46, 16)
    m1, m2 = bytes(range(16)), bytes(range(16, 32))
    xor = bytes(a ^ b for a, b in zip(m1, m2))
    cw = bytes(a ^ b for a, b in zip(rs.encode(m1), rs.encode(m2)))
    assert cw == rs.encode(xor)


# -- duplicated Reed–Muller -----------------------------------------------------------

def test_rm_clean_roundtrip():
    msg = bytes(range(46))
    bits = rm_encode(msg, 3)
    assert bits.shape == (46 * 384,)
    assert rm_decode(bits, 46, 3) == msg


def test_rm_corrects_heavy_noise():
    drbg = Drbg("rm-noise")
    msg = drbg.random_bytes(46)
    bits = rm_encode(msg, 3)
    noise = (np.frombuffer(drbg.random_bytes(bits.size), dtype=np.uint8) < 51).astype(np.uint8)
    decoded = rm_decode(bits ^ noise, 46, 3)
    errors = sum(a != b for a, b in zip(decoded, msg))
    assert errors <= 2  # ~20% bit flips: ML decoding recovers almost all


def test_rm_multiplicity_five():
    msg = bytes(range(56))
    bits = rm_encode(msg, 5)
    assert bits.shape == (56 * 640,)
    assert rm_decode(bits, 56, 5) == msg


def test_rm_length_validation():
    with pytest.raises(ValueError):
        rm_decode(np.zeros(100, dtype=np.uint8), 46, 3)


# -- the KEM ---------------------------------------------------------------------------

EXPECTED_SIZES = {"hqc128": (2249, 4481), "hqc192": (4522, 9026), "hqc256": (7245, 14469)}


@pytest.mark.parametrize("kem", [HQC128, HQC192, HQC256], ids=lambda k: k.name)
def test_kem_roundtrip_and_sizes(kem):
    drbg = Drbg("hqc-" + kem.name)
    pk, sk = kem.keygen(drbg)
    ct, ss = kem.encaps(pk, drbg)
    kem.check_sizes(pk, ct, ss)
    assert (kem.public_key_bytes, kem.ciphertext_bytes) == EXPECTED_SIZES[kem.name]
    assert kem.decaps(sk, ct) == ss


def test_repeated_roundtrips_no_decoding_failures():
    drbg = Drbg("hqc-dfr")
    pk, sk = HQC128.keygen(drbg)
    for _ in range(8):
        ct, ss = HQC128.encaps(pk, drbg)
        assert HQC128.decaps(sk, ct) == ss


def test_implicit_rejection():
    drbg = Drbg("hqc-reject")
    pk, sk = HQC128.keygen(drbg)
    ct, ss = HQC128.encaps(pk, drbg)
    for pos in (0, 2000, len(ct) - 1):
        bad = ct[:pos] + bytes([ct[pos] ^ 1]) + ct[pos + 1:]
        out = HQC128.decaps(sk, bad)
        assert out != ss and len(out) == 64
        assert HQC128.decaps(sk, bad) == out  # deterministic rejection


def test_length_validation():
    drbg = Drbg("hqc-len")
    pk, sk = HQC128.keygen(drbg)
    with pytest.raises(ValueError):
        HQC128.encaps(pk[:-1], drbg)
    with pytest.raises(ValueError):
        HQC128.decaps(sk, b"\x00" * 100)


def test_keygen_deterministic():
    assert HQC128.keygen(Drbg("same")) == HQC128.keygen(Drbg("same"))
