"""Registry: the paper's full algorithm matrix with spec wire sizes."""

import pytest

from repro.pqc.registry import (
    ALL_KEM_NAMES,
    ALL_SIG_NAMES,
    CLASSICAL_KEMS,
    CLASSICAL_SIGS,
    KEMS,
    LEVEL_GROUPS,
    SIGS,
    get_kem,
    get_sig,
    is_hybrid,
)


def test_paper_counts():
    assert len(ALL_KEM_NAMES) == 23          # the paper's "23 KAs"
    assert len(ALL_SIG_NAMES) == 23          # Table 2b's rows
    assert set(ALL_KEM_NAMES) <= set(KEMS)
    assert set(ALL_SIG_NAMES) <= set(SIGS)


def test_unknown_names_raise_with_guidance():
    with pytest.raises(KeyError, match="unknown key agreement"):
        get_kem("kyber9000")
    with pytest.raises(KeyError, match="unknown signature algorithm"):
        get_sig("sphincs9000")


def test_is_hybrid_classification():
    assert is_hybrid("p256_kyber512")
    assert is_hybrid("p521_dilithium5")
    assert not is_hybrid("kyber512")
    assert not is_hybrid("rsa:2048")
    assert not is_hybrid("sphincs-shake-128f")


def test_classical_sets():
    assert CLASSICAL_KEMS == {"x25519", "p256", "p384", "p521"}
    assert "rsa:2048" in CLASSICAL_SIGS


def test_level_groups_cover_only_registered_algorithms():
    for group in LEVEL_GROUPS.values():
        for kem in group["kems"]:
            assert kem in KEMS and not is_hybrid(kem)
        for sig in group["sigs"]:
            assert sig in SIGS and not is_hybrid(sig)


# Golden wire sizes: public key and ciphertext/signature bytes, straight
# from the round-3 specifications. These sizes drive the paper's data
# volumes, so they are pinned here explicitly.
KEM_SIZES = {
    "x25519": (32, 32), "p256": (65, 65), "p384": (97, 97), "p521": (133, 133),
    "kyber512": (800, 768), "kyber768": (1184, 1088), "kyber1024": (1568, 1568),
    "kyber90s512": (800, 768), "kyber90s768": (1184, 1088), "kyber90s1024": (1568, 1568),
    "bikel1": (1541, 1573), "bikel3": (3083, 3115),
    "hqc128": (2249, 4481), "hqc192": (4522, 9026), "hqc256": (7245, 14469),
    "p256_kyber512": (865, 833), "p384_kyber768": (1281, 1185),
    "p521_kyber1024": (1701, 1701), "p256_bikel1": (1606, 1638),
    "p384_bikel3": (3180, 3212), "p256_hqc128": (2314, 4546),
    "p384_hqc192": (4619, 9123), "p521_hqc256": (7378, 14602),
}

SIG_SIZES = {
    "falcon512": (897, 666), "falcon1024": (1793, 1280),
    "dilithium2": (1312, 2420), "dilithium3": (1952, 3293), "dilithium5": (2592, 4595),
    "dilithium2_aes": (1312, 2420), "dilithium3_aes": (1952, 3293),
    "dilithium5_aes": (2592, 4595),
    "sphincs128": (32, 17088), "sphincs192": (48, 35664), "sphincs256": (64, 49856),
    "rsa:1024": (134, 128), "rsa:2048": (262, 256), "rsa:3072": (390, 384),
    "rsa:4096": (518, 512),
    "p256_falcon512": (962, 730), "p256_sphincs128": (97, 17152),
    "p256_dilithium2": (1377, 2484), "rsa3072_dilithium2": (1702, 2804),
    "p384_dilithium3": (2049, 3389), "p384_sphincs192": (145, 35760),
    "p521_dilithium5": (2725, 4727), "p521_falcon1024": (1926, 1412),
    "p521_sphincs256": (197, 49988),
}


@pytest.mark.parametrize("name", sorted(KEM_SIZES))
def test_kem_wire_sizes(name):
    kem = get_kem(name)
    assert (kem.public_key_bytes, kem.ciphertext_bytes) == KEM_SIZES[name]


@pytest.mark.parametrize("name", sorted(SIG_SIZES))
def test_sig_wire_sizes(name):
    sig = get_sig(name)
    assert (sig.public_key_bytes, sig.signature_bytes) == SIG_SIZES[name]


def test_nist_levels_match_paper_grouping():
    assert get_kem("kyber512").nist_level == 1
    assert get_kem("kyber768").nist_level == 3
    assert get_kem("kyber1024").nist_level == 5
    assert get_kem("p256_bikel1").nist_level == 1
    assert get_sig("dilithium2").nist_level == 2
    assert get_sig("p521_falcon1024").nist_level == 5
    assert get_sig("rsa:2048").sub_level_one


def test_table2a_row_order_levels_nondecreasing():
    levels = [get_kem(name).nist_level for name in ALL_KEM_NAMES]
    assert levels == sorted(levels)
