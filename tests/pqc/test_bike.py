"""BIKE: ring algebra, the BGF decoder, and the KEM."""

import numpy as np
import pytest

from repro.crypto.drbg import Drbg
from repro.pqc.bike import BIKEL1, BIKEL3, ring
from repro.pqc.bike.decoder import BgfDecoder
from repro.pqc.bike.kem import _expand_error


def _slow_mul(a, b, r):
    out = np.zeros(r, dtype=np.uint8)
    for i in range(r):
        if a[i]:
            out ^= np.roll(b, i)
    return out


def test_ring_mul_matches_reference_small():
    r = 13
    drbg = Drbg("ring-small")
    a = ring.from_bytes(drbg.random_bytes(2), r)
    b = ring.from_bytes(drbg.random_bytes(2), r)
    assert np.array_equal(ring.mul(a, b, r), _slow_mul(a, b, r))


def test_ring_mul_matches_sparse_mul_full_size():
    r = 12323
    drbg = Drbg("ring-big")
    support = drbg.sample_distinct(r, 71)
    dense = ring.from_bytes(drbg.random_bytes((r + 7) // 8), r)
    sparse_bits = ring.support_to_bits(support, r)
    assert np.array_equal(ring.mul(sparse_bits, dense, r),
                          ring.sparse_mul(support, dense))


def test_square_k_is_repeated_squaring():
    r = 13
    a = ring.support_to_bits([0, 2, 3], r)
    sq1 = ring.mul(a, a, r)
    assert np.array_equal(ring.square_k(a, 1, r), sq1)
    assert np.array_equal(ring.square_k(a, 2, r), ring.mul(sq1, sq1, r))


@pytest.mark.parametrize("r,weight", [(13, 3), (12323, 71)])
def test_inverse(r, weight):
    drbg = Drbg(f"inv{r}")
    support = drbg.sample_distinct(r, weight)  # odd weight -> invertible
    a = ring.support_to_bits(support, r)
    product = ring.mul(a, ring.inverse(a, r), r)
    assert product[0] == 1 and product[1:].sum() == 0


def test_bits_bytes_roundtrip():
    r = 12323
    drbg = Drbg("codec")
    bits = ring.from_bytes(drbg.random_bytes((r + 7) // 8), r)
    assert np.array_equal(ring.from_bytes(ring.to_bytes(bits), r), bits)


def test_expand_error_weight_and_determinism():
    e = _expand_error(b"\x01" * 32, 12323, 134)
    assert e.sum() == 134
    assert e.shape == (2 * 12323,)
    assert np.array_equal(e, _expand_error(b"\x01" * 32, 12323, 134))
    assert not np.array_equal(e, _expand_error(b"\x02" * 32, 12323, 134))


def test_bgf_decoder_recovers_planted_error():
    r, d, t = 12323, 71, 134
    drbg = Drbg("bgf")
    h0 = np.array(sorted(drbg.sample_distinct(r, d)), dtype=np.int64)
    h1 = np.array(sorted(drbg.sample_distinct(r, d)), dtype=np.int64)
    e = _expand_error(b"\x33" * 32, r, t)
    e0, e1 = e[:r], e[r:]
    syndrome = ring.sparse_mul(h0, e0) ^ ring.sparse_mul(h1, e1)
    decoder = BgfDecoder(r, d, t, (0.0069722, 13.530, 36))
    decoded = decoder.decode(syndrome, [h0, h1])
    assert decoded is not None
    assert np.array_equal(decoded, e)


def test_bgf_decoder_zero_syndrome():
    r, d, t = 12323, 71, 134
    decoder = BgfDecoder(r, d, t, (0.0069722, 13.530, 36))
    h = np.arange(d, dtype=np.int64)
    decoded = decoder.decode(np.zeros(r, dtype=np.uint8), [h, h + 100])
    assert decoded is not None and decoded.sum() == 0


EXPECTED_SIZES = {"bikel1": (1541, 1573), "bikel3": (3083, 3115)}


@pytest.mark.parametrize("kem", [BIKEL1, BIKEL3], ids=lambda k: k.name)
def test_kem_roundtrip_and_sizes(kem):
    drbg = Drbg("bike-" + kem.name)
    pk, sk = kem.keygen(drbg)
    ct, ss = kem.encaps(pk, drbg)
    kem.check_sizes(pk, ct, ss)
    assert (kem.public_key_bytes, kem.ciphertext_bytes) == EXPECTED_SIZES[kem.name]
    assert kem.decaps(sk, ct) == ss


def test_many_roundtrips_no_decoding_failures():
    drbg = Drbg("bike-dfr")
    pk, sk = BIKEL1.keygen(drbg)
    for _ in range(10):
        ct, ss = BIKEL1.encaps(pk, drbg)
        assert BIKEL1.decaps(sk, ct) == ss


def test_implicit_rejection_deterministic():
    drbg = Drbg("bike-reject")
    pk, sk = BIKEL1.keygen(drbg)
    ct, ss = BIKEL1.encaps(pk, drbg)
    bad = bytes([ct[0] ^ 1]) + ct[1:]
    out = BIKEL1.decaps(sk, bad)
    assert out != ss
    assert BIKEL1.decaps(sk, bad) == out


def test_length_validation():
    drbg = Drbg("bike-len")
    pk, sk = BIKEL1.keygen(drbg)
    with pytest.raises(ValueError):
        BIKEL1.encaps(pk + b"\x00", drbg)
    with pytest.raises(ValueError):
        BIKEL1.decaps(sk, b"\x00" * 10)


def test_client_attribution_is_libssl():
    """The paper's Table 3 quirk: BIKE's client work shows up in libssl."""
    assert BIKEL1.client_attribution == "libssl"
    assert BIKEL1.server_attribution == "libcrypto"
