"""Command-line interface."""

import pytest

from repro.core import campaign
from repro.core.cli import main
from repro.core.experiment import ExperimentConfig


def test_run_named_set(tmp_path, monkeypatch, capsys):
    monkeypatch.setitem(
        campaign.EXPERIMENT_SETS, "tiny-cli",
        lambda: [ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)])
    assert main(["-o", str(tmp_path), "tiny-cli"]) == 0
    captured = capsys.readouterr()
    assert "ran 1 experiments" in captured.err


def test_unknown_set_errors(tmp_path):
    with pytest.raises(KeyError):
        main(["-o", str(tmp_path), "level42"])


def test_unknown_artifact_errors(tmp_path):
    with pytest.raises(KeyError, match="unknown artifact"):
        main(["-o", str(tmp_path), "--evaluate", "table9"])


def test_requires_names():
    with pytest.raises(SystemExit):
        main([])


def test_single_experiment_with_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert main(["--kem", "x25519", "--sig", "rsa:1024",
                 "--trace", str(trace), "--metrics", str(metrics),
                 "--flame"]) == 0
    captured = capsys.readouterr()
    assert "x25519 x rsa:1024" in captured.err
    assert "why was this slow" in captured.out
    assert "Table 3 breakdown from spans" in captured.out
    assert trace.exists() and metrics.exists()
    import json
    assert json.loads(trace.read_text())["traceEvents"]
    assert "counters" in json.loads(metrics.read_text())


def test_kem_without_sig_errors():
    with pytest.raises(SystemExit):
        main(["--kem", "x25519"])


def test_trace_requires_single_experiment(tmp_path):
    with pytest.raises(SystemExit):
        main(["--trace", str(tmp_path / "t.json"), "all-kem"])


def test_evaluate_rejects_single_experiment_mode():
    with pytest.raises(SystemExit):
        main(["--evaluate", "--kem", "x25519", "--sig", "rsa:1024"])


def test_evaluate_forwards_batch_seconds(tmp_path, monkeypatch):
    # --batch-seconds 0 must reach the executor through --evaluate too
    # (not silently fall back to the default batching window)
    from repro.core import cli

    captured = {}

    def fake_run_sets(names, progress, *, jobs, recorder, batch_seconds):
        captured["names"] = names
        captured["batch_seconds"] = batch_seconds
        return {}

    monkeypatch.setattr(cli.campaign, "run_sets", fake_run_sets)
    monkeypatch.setattr(cli.evaluate, "table3", lambda results: [])
    monkeypatch.setattr(cli.report, "render_table3", lambda rows: "stub")
    cli.evaluate_artifact("table3", tmp_path, batch_seconds=0.0)
    assert captured["names"] == ["table3-perf"]
    assert captured["batch_seconds"] == 0.0


def test_evaluate_cli_flag_reaches_run_sets(tmp_path, monkeypatch):
    from repro.core import cli

    captured = {}

    def fake_run_sets(names, progress, *, jobs, recorder, batch_seconds):
        captured["batch_seconds"] = batch_seconds
        return {}

    monkeypatch.setattr(cli.campaign, "run_sets", fake_run_sets)
    monkeypatch.setattr(cli.evaluate, "table3", lambda results: [])
    monkeypatch.setattr(cli.report, "render_table3", lambda rows: "stub")
    main(["--evaluate", "table3", "-o", str(tmp_path), "--batch-seconds", "0"])
    assert captured["batch_seconds"] == 0.0
