"""Command-line interface."""

import pytest

from repro.core import campaign
from repro.core.cli import main
from repro.core.experiment import ExperimentConfig


def test_run_named_set(tmp_path, monkeypatch, capsys):
    monkeypatch.setitem(
        campaign.EXPERIMENT_SETS, "tiny-cli",
        lambda: [ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)])
    assert main(["-o", str(tmp_path), "tiny-cli"]) == 0
    captured = capsys.readouterr()
    assert "ran 1 experiments" in captured.err


def test_unknown_set_errors(tmp_path):
    with pytest.raises(KeyError):
        main(["-o", str(tmp_path), "level42"])


def test_unknown_artifact_errors(tmp_path):
    with pytest.raises(KeyError, match="unknown artifact"):
        main(["-o", str(tmp_path), "--evaluate", "table9"])


def test_requires_names():
    with pytest.raises(SystemExit):
        main([])
