"""Experiment runner: sampling, extrapolation, caching, failure handling."""

import pytest

from repro.core.experiment import (
    INTER_HANDSHAKE_GAP,
    ExperimentConfig,
    run_experiment,
)
from repro.faults.errors import FailureQuotaExceeded
from repro.obs.metrics import Metrics


@pytest.fixture(scope="module")
def baseline():
    return run_experiment(ExperimentConfig(kem="x25519", sig="rsa:1024"))


def test_config_key_uniqueness():
    a = ExperimentConfig(kem="x25519", sig="rsa:2048")
    b = ExperimentConfig(kem="x25519", sig="rsa:2048", scenario="lte-m")
    c = ExperimentConfig(kem="x25519", sig="rsa:2048", policy="default")
    d = ExperimentConfig(kem="x25519", sig="rsa:2048", profiling=True)
    keys = {a.key, b.key, c.key, d.key}
    assert len(keys) == 4


def test_deterministic_scenario_few_samples_extrapolated(baseline):
    assert len(baseline.total_samples) <= 3
    # all samples identical (deterministic network)
    assert len(set(baseline.total_samples)) == 1
    # count extrapolated to the 60 s period
    expected = int(60.0 / (baseline.total_samples[0] + INTER_HANDSHAKE_GAP) * 0.5)
    assert baseline.n_handshakes > expected  # wall includes trailing ACK only


def test_medians_and_rates(baseline):
    assert baseline.part_a_median + baseline.part_b_median == pytest.approx(
        baseline.total_median)
    assert baseline.handshakes_per_second == baseline.n_handshakes / 60.0
    assert baseline.n_handshakes > 1000


def test_byte_and_packet_counts(baseline):
    assert 400 < baseline.client_bytes < 1500
    assert baseline.server_bytes > baseline.client_bytes
    assert baseline.client_packets >= 4


def test_cpu_accounting(baseline):
    assert baseline.server_cpu_ms > 0
    assert baseline.client_cpu_ms > 0
    assert "libcrypto" in baseline.server_cpu_by_library
    assert "python" in baseline.server_cpu_by_library


@pytest.mark.parametrize("duration", [0.0, -1.0, -0.001])
def test_nonpositive_duration_rejected_up_front(duration):
    with pytest.raises(ValueError, match="duration must be positive"):
        run_experiment(ExperimentConfig(
            kem="x25519", sig="rsa:1024", duration=duration))


def test_nonpositive_duration_rejected_even_with_cache(tmp_path, monkeypatch):
    # the guard fires before the cache lookup, so a stale cached result
    # can never mask the bad configuration
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    with pytest.raises(ValueError):
        run_experiment(ExperimentConfig(kem="x25519", sig="rsa:1024",
                                        duration=-5.0))
    assert not (tmp_path / "experiment").exists()


def test_zero_max_samples_rejected():
    with pytest.raises(ValueError, match="max_samples"):
        run_experiment(ExperimentConfig(
            kem="x25519", sig="rsa:1024", max_samples=0))


def test_result_carries_metrics_snapshot(baseline):
    counters = baseline.metrics["counters"]
    assert counters["handshake.count"] == len(baseline.total_samples)
    assert counters["tcp.client.segments_sent"] > 0
    assert baseline.metrics["histograms"]["handshake.part_a"]["count"] >= 1


def test_stochastic_scenario_collects_many_samples():
    result = run_experiment(ExperimentConfig(
        kem="x25519", sig="rsa:1024", scenario="high-loss", max_samples=50))
    assert len(result.total_samples) == 50
    # extrapolated over 60 s; the mean period is dominated by rare 1 s+
    # SYN-retransmission handshakes (10 % loss), so well above the cap
    assert result.n_handshakes > len(result.total_samples)
    # the median, however, stays near the loss-free latency
    assert result.total_median < 0.05


def test_cache_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    config = ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.total_samples == second.total_samples
    assert (tmp_path / "experiment").exists()


def test_cache_hit_merges_same_metrics_as_cold_run(tmp_path, monkeypatch):
    """A cache hit must replay the *whole* snapshot into the caller's
    registry — counters, gauges, and histograms — so campaign aggregation
    is identical whether the result was computed or loaded."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    config = ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)
    cold = Metrics()
    run_experiment(config, metrics=cold)
    warm = Metrics()
    run_experiment(config, metrics=warm)
    assert warm.snapshot() == cold.snapshot()
    # histograms specifically: samples restored, not just summary counters
    assert warm.histogram("handshake.part_a").samples == \
        cold.histogram("handshake.part_a").samples
    assert warm.histogram("handshake.part_a").samples


def test_use_cache_false_recomputes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    config = ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)
    result = run_experiment(config, use_cache=False)
    assert not (tmp_path / "experiment").exists()
    assert result.n_handshakes > 0


def test_profiling_increases_cpu_costs(baseline):
    profiled = run_experiment(ExperimentConfig(
        kem="x25519", sig="rsa:1024", profiling=True))
    assert profiled.server_cpu_ms > baseline.server_cpu_ms * 1.2


# -- fault plans and failure semantics ---------------------------------------

def test_fault_knobs_extend_key_only_when_set():
    base = ExperimentConfig(kem="x25519", sig="rsa:1024")
    # defaults leave the key byte-identical to the pre-fault format, so
    # existing cache entries stay addressable
    assert "faults" not in base.key
    assert "hsto" not in base.key and "quota" not in base.key
    chaotic = ExperimentConfig(kem="x25519", sig="rsa:1024", faults="chaos")
    assert "faults=corrupt=0.01" in chaotic.key
    timed = ExperimentConfig(kem="x25519", sig="rsa:1024", handshake_timeout=1.0,
                             failure_quota=3)
    assert "hsto=1.0" in timed.key and "quota=3" in timed.key
    # a named plan and its equivalent spec canonicalize to the same key
    spec = ExperimentConfig(
        kem="x25519", sig="rsa:1024",
        faults="corrupt=0.01,dup=0.02,reorder=0.05,reorder_delay=0.02")
    assert spec.key == chaotic.key


def test_session_and_chain_extend_key_only_when_set():
    base = ExperimentConfig(kem="x25519", sig="rsa:1024")
    assert "session" not in base.key and "chain" not in base.key
    resumed = ExperimentConfig(kem="x25519", sig="rsa:1024", session="resume")
    assert "session=resume" in resumed.key
    chained = ExperimentConfig(kem="x25519", sig="rsa:1024",
                               chain="intermediate")
    assert "chain=intermediate" in chained.key
    # same for the script cache key (shared across scenarios/durations)
    from repro.core.experiment import script_key
    assert script_key("x25519", "rsa:1024", "optimized") \
        == "x25519|rsa:1024|optimized|paper"
    assert script_key("x25519", "rsa:1024", "optimized",
                      session="mtls", chain="suppressed") \
        == "x25519|rsa:1024|optimized|paper|session=mtls|chain=suppressed"


def test_successful_run_outcomes_all_success(baseline):
    outcomes = getattr(baseline, "outcomes", {})
    assert outcomes == {"success": len(baseline.total_samples)}
    assert baseline.n_failures == 0


def test_retry_with_fresh_seed_fills_the_sample_budget(monkeypatch):
    """A failed handshake must not end the run: the next attempt forks a
    fresh netem seed and the sample budget still fills."""
    from repro.netsim import tcp

    monkeypatch.setattr(tcp, "MAX_RETRIES", 1)  # make lte-m loss lethal
    result = run_experiment(ExperimentConfig(
        kem="x25519", sig="rsa:1024", scenario="lte-m", faults="chaos",
        max_samples=15, duration=30.0), use_cache=False)
    assert result.outcomes == {"success": 15, "transport-error": 2}
    assert result.n_failures == 2
    assert len(result.total_samples) == 15
    # failure counters surfaced through the run's metrics snapshot
    assert result.metrics["counters"]["handshake.failures.transport-error"] == 2


def test_failure_quota_exceeded_raises_typed_error(monkeypatch):
    from repro.netsim import tcp

    monkeypatch.setattr(tcp, "MAX_RETRIES", 0)  # every lossy handshake dies
    with pytest.raises(FailureQuotaExceeded, match="quota 2"):
        run_experiment(ExperimentConfig(
            kem="x25519", sig="rsa:1024", scenario="lte-m", max_samples=15,
            duration=30.0, failure_quota=2), use_cache=False)


def test_all_timeouts_is_a_typed_failure_not_a_hang():
    # lte-m needs >= 1 RTT (0.2 s); a 0.05 s watchdog kills every attempt
    # and each one charges the full timeout against the period
    with pytest.raises(FailureQuotaExceeded, match="no successful handshake"):
        run_experiment(ExperimentConfig(
            kem="x25519", sig="rsa:1024", scenario="lte-m", duration=1.0,
            handshake_timeout=0.05), use_cache=False)


def test_mixed_outcomes_deterministic_and_cached(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    config = ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="5g",
                              faults="chaos", max_samples=20, duration=30.0,
                              handshake_timeout=0.2)
    cold = run_experiment(config)
    assert cold.outcomes == {"success": 20, "timeout": 10}
    warm = run_experiment(config)          # cache hit
    assert warm.outcomes == cold.outcomes
    assert warm.total_samples == cold.total_samples
    rerun = run_experiment(config, use_cache=False)  # recomputed
    assert rerun.outcomes == cold.outcomes


def test_deliver_mode_corruption_rejected_for_scripted_replay():
    with pytest.raises(ValueError, match="deliver-mode"):
        run_experiment(ExperimentConfig(
            kem="x25519", sig="rsa:1024",
            faults="corrupt=0.1,corrupt_mode=deliver"))


def test_scenario_latency_ordering():
    none = run_experiment(ExperimentConfig(kem="x25519", sig="rsa:1024"))
    delay = run_experiment(ExperimentConfig(
        kem="x25519", sig="rsa:1024", scenario="high-delay"))
    bandwidth = run_experiment(ExperimentConfig(
        kem="x25519", sig="rsa:1024", scenario="low-bandwidth"))
    assert none.total_median < bandwidth.total_median < delay.total_median
