"""Parallel campaign executor: cost model, scheduling, equivalence, faults.

The equivalence tests run real (small) experiments twice — once serial,
once through a spawned worker pool — against fresh cache directories, so
they prove the executor's core contract: parallelism changes wall-clock
time, never values.
"""

import pytest

from repro import cache
from repro.core import executor
from repro.core.executor import (
    batch_units,
    estimated_cost,
    record_cost,
    replay_cost,
    resolve_jobs,
    run_campaign,
    schedule,
)
from repro.core.experiment import ExperimentConfig, script_key
from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer

SMALL_SET = [
    ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0),
    ExperimentConfig(kem="p256", sig="rsa:1024", duration=5.0),
    ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="high-loss",
                     max_samples=5, duration=5.0),
    ExperimentConfig(kem="kyber512", sig="dilithium2", duration=5.0),
]


@pytest.fixture
def cold_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the host has 4 cores.

    ``resolve_jobs`` clamps to ``os.cpu_count()``, so on a 1-core CI
    runner every ``jobs > 1`` request would take the serial path and the
    pool tests would silently stop exercising the pool.
    """
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 4)


# -- static cost table -------------------------------------------------------

def test_record_cost_ranks_slow_recorders_first():
    # hash-based signing dwarfs lattice signing; bigger variants cost more
    assert record_cost("x25519", "sphincs256") > record_cost("x25519", "sphincs128")
    assert record_cost("x25519", "sphincs128") > record_cost("x25519", "dilithium2")
    # Falcon keygen blows up with the parameter set, RSA with the modulus
    assert record_cost("x25519", "falcon1024") > record_cost("x25519", "falcon512")
    assert record_cost("x25519", "rsa:3072") > record_cost("x25519", "rsa:2048")
    # composites pay for both components
    assert record_cost("x25519", "p256_sphincs128") >= record_cost("x25519", "sphincs128")


def test_replay_cost_tracks_samples_and_flags():
    base = ExperimentConfig(kem="kyber512", sig="dilithium2")
    lossy = ExperimentConfig(kem="kyber512", sig="dilithium2", scenario="high-loss")
    perf = ExperimentConfig(kem="kyber512", sig="dilithium2", profiling=True)
    big = ExperimentConfig(kem="hqc256", sig="sphincs128")
    assert replay_cost(lossy) > replay_cost(base)      # 151 samples vs 3
    assert replay_cost(perf) > replay_cost(base)       # white-box overhead
    assert replay_cost(big) > replay_cost(base)        # wire volume
    assert estimated_cost(base, cold=True) > estimated_cost(base, cold=False)


def test_schedule_puts_expensive_leaders_first():
    cheap = ExperimentConfig(kem="x25519", sig="rsa:1024")
    cheap_lossy = ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="high-loss")
    slow = ExperimentConfig(kem="x25519", sig="sphincs128")
    ordered = schedule([cheap, cheap_lossy, slow])
    # the SPHINCS+ recording is the long pole: dispatched first
    assert ordered[0] == slow
    # one leader per distinct script; the same-script follower trails them
    leaders = ordered[:2]
    assert {script_key(c.kem, c.sig, c.policy, c.seed) for c in leaders} == {
        script_key(c.kem, c.sig, c.policy, c.seed) for c in [cheap, slow]}
    assert ordered[2].scenario in ("none", "high-loss")
    assert len(ordered) == 3


def test_schedule_leader_is_costliest_replay_of_its_group():
    none = ExperimentConfig(kem="x25519", sig="rsa:1024")
    lossy = ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="high-loss")
    ordered = schedule([none, lossy])
    assert ordered[0] == lossy  # recording + the 151-sample replay go together


def test_resolve_jobs(multicore):
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(7) == 4      # clamped to the (patched) core count
    assert resolve_jobs(None) == 4
    with pytest.raises(ValueError, match="jobs"):
        resolve_jobs(0)


def test_resolve_jobs_clamps_to_one_core(monkeypatch):
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 1)
    assert resolve_jobs(4) == 1
    assert resolve_jobs(None) == 1


# -- experiment batching -----------------------------------------------------

def _synthetic_unit_inputs():
    configs = [ExperimentConfig(kem="x25519", sig="rsa:1024", seed=f"s{i}")
               for i in range(6)]
    costs = {configs[0].key: 1.0,      # expensive: stays singleton
             configs[1].key: 0.1, configs[2].key: 0.1,
             configs[3].key: 0.1,      # three cheap ones share a unit
             configs[4].key: 0.4,      # above threshold: singleton
             configs[5].key: 0.05}
    return configs, costs


def test_batch_units_packs_cheap_and_isolates_expensive():
    configs, costs = _synthetic_unit_inputs()
    units = batch_units(configs, costs, batch_seconds=0.25)
    assert units == [[configs[0]], [configs[1], configs[2]],
                     [configs[4]], [configs[3], configs[5]]]
    # every config dispatched exactly once, whatever the packing
    flat = [c.key for unit in units for c in unit]
    assert sorted(flat) == sorted(c.key for c in configs)


def test_batch_units_zero_threshold_disables_packing():
    configs, costs = _synthetic_unit_inputs()
    units = batch_units(configs, costs, batch_seconds=0.0)
    assert units == [[c] for c in configs]


def test_batch_units_keeps_traced_config_singleton():
    configs, costs = _synthetic_unit_inputs()
    units = batch_units(configs, costs, batch_seconds=0.25,
                        traced_key=configs[1].key)
    assert [configs[1]] in units


def test_worker_warm_builds_kernel_tables():
    from repro.crypto import kernels

    warmed = executor._worker_warm()
    assert warmed is None                  # initializer returns nothing
    assert set(kernels.warm()) >= {"gf256", "hqc", "dilithium", "kyber"}


# -- serial/parallel equivalence ---------------------------------------------

def test_parallel_equals_serial(tmp_path, monkeypatch, multicore):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial_metrics = Metrics()
    serial = run_campaign(SMALL_SET, jobs=1, metrics=serial_metrics)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel_metrics = Metrics()
    stats = {}
    parallel = run_campaign(SMALL_SET, jobs=3, metrics=parallel_metrics,
                            stats=stats)

    assert list(parallel) == list(serial)
    for key in serial:
        assert parallel[key] == serial[key], key     # full ExperimentResult eq
    assert parallel_metrics.snapshot() == serial_metrics.snapshot()
    assert stats["dispatched"] == len(SMALL_SET)
    assert stats["distinct_scripts"] == 3            # two configs share a script


def test_parallel_equals_serial_with_streaming_instruments(
        tmp_path, monkeypatch, multicore):
    """Bit-identity holds when campaign histograms spill to sketches.

    A retention of 8 forces every campaign-level latency histogram into
    streaming (sketch + reservoir) mode; worker snapshot shipping must
    still reconstruct the exact leader state.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial_metrics = Metrics(retention=8)
    serial = run_campaign(SMALL_SET, jobs=1, metrics=serial_metrics)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel_metrics = Metrics(retention=8)
    parallel = run_campaign(SMALL_SET, jobs=3, metrics=parallel_metrics)

    assert parallel == serial
    assert parallel_metrics.snapshot() == serial_metrics.snapshot()
    histogram = parallel_metrics.histogram("handshake.total")
    assert histogram.spilled and histogram.samples == []
    assert histogram.count == serial_metrics.histogram("handshake.total").count


def test_batched_parallel_equals_serial(tmp_path, monkeypatch, multicore):
    """A huge batch threshold packs whole script groups into shared units;
    results and metrics must still be bit-identical to the serial run."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial_metrics = Metrics()
    serial = run_campaign(SMALL_SET, jobs=1, metrics=serial_metrics,
                          batch_seconds=0.0)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "batched"))
    batched_metrics = Metrics()
    stats = {}
    batched = run_campaign(SMALL_SET, jobs=3, metrics=batched_metrics,
                           stats=stats, batch_seconds=0.5)
    assert batched == serial
    assert batched_metrics.snapshot() == serial_metrics.snapshot()
    assert stats["batched"] >= 2                  # some unit actually shared
    assert stats["units"] < stats["dispatched"]


def test_parallel_warm_cache_resolves_inline(cold_cache, monkeypatch, multicore):
    serial = run_campaign(SMALL_SET, jobs=1, metrics=Metrics())

    class PoolBomb:
        def __init__(self, *a, **k):
            raise AssertionError("a fully-cached campaign must not spawn workers")

    monkeypatch.setattr(executor, "ProcessPoolExecutor", PoolBomb)
    stats = {}
    warm_metrics = Metrics()
    warm = run_campaign(SMALL_SET, jobs=4, metrics=warm_metrics, stats=stats)
    assert warm == serial
    assert stats["hits"] == len(SMALL_SET) and stats["dispatched"] == 0


def test_single_miss_runs_inline_without_pool(cold_cache, monkeypatch, multicore):
    # warm all but one config: a single cold miss must not pay for a pool
    run_campaign(SMALL_SET[:3], jobs=1, metrics=Metrics())
    serial_key = SMALL_SET[3].key

    class PoolBomb:
        def __init__(self, *a, **k):
            raise AssertionError("a single miss must not spawn workers")

    monkeypatch.setattr(executor, "ProcessPoolExecutor", PoolBomb)
    before = cache.metrics.snapshot()["counters"]
    stats = {}
    results = run_campaign(SMALL_SET, jobs=4, metrics=Metrics(), stats=stats)
    after = cache.metrics.snapshot()["counters"]
    assert serial_key in results and len(results) == len(SMALL_SET)
    assert stats["hits"] == 3 and stats["dispatched"] == 1
    # the inline run's miss is counted exactly once, as in a serial run
    assert after["cache.experiment.miss"] - before.get("cache.experiment.miss", 0.0) == 1
    assert after["cache.experiment.store"] - before.get("cache.experiment.store", 0.0) == 1


def test_one_core_host_takes_exact_serial_path(cold_cache, monkeypatch):
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 1)

    class PoolBomb:
        def __init__(self, *a, **k):
            raise AssertionError("jobs clamped to 1 core must not spawn workers")

    monkeypatch.setattr(executor, "ProcessPoolExecutor", PoolBomb)
    stats = {}
    results = run_campaign(SMALL_SET, jobs=4, metrics=Metrics(), stats=stats)
    assert len(results) == len(SMALL_SET)
    assert stats["jobs"] == 1 and stats["dispatched"] is None  # serial branch


def test_duplicate_configs_merge_like_serial(cold_cache, monkeypatch, multicore):
    doubled = SMALL_SET[:2] + [SMALL_SET[0]]
    serial_metrics = Metrics()
    serial = run_campaign(doubled, jobs=1, metrics=serial_metrics)
    # fresh dir for the parallel cold run
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cold_cache / "p"))
    parallel_metrics = Metrics()
    parallel = run_campaign(doubled, jobs=2, metrics=parallel_metrics)
    assert parallel == serial
    assert len(parallel) == 2
    # the duplicate's metrics counted twice in both modes
    assert parallel_metrics.snapshot() == serial_metrics.snapshot()


def test_progress_reported_for_hits_and_misses(cold_cache, multicore):
    run_campaign(SMALL_SET[:2], jobs=1, metrics=Metrics())   # warm 2 of 4
    calls = []
    run_campaign(SMALL_SET, jobs=2, set_name="small",
                 progress=lambda *a: calls.append(a))
    assert len(calls) == len(SMALL_SET)
    assert {c[0] for c in calls} == {"small"}
    assert sorted(c[1] for c in calls) == list(range(len(SMALL_SET)))


def test_fault_campaign_failure_sets_identical_serial_and_parallel(
        tmp_path, monkeypatch, multicore):
    """The determinism contract under chaos: same configs + seeds + fault
    plans produce bit-identical outcome histograms at --jobs 1 and N."""
    fault_set = [
        ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="5g",
                         faults="chaos", max_samples=20, duration=30.0,
                         handshake_timeout=0.2),
        ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="high-loss",
                         faults="bit-rot", max_samples=10, duration=10.0),
        ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="lte-m",
                         faults="dup", max_samples=10, duration=10.0),
    ]
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial = run_campaign(fault_set, jobs=1, metrics=Metrics())
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel = run_campaign(fault_set, jobs=3, metrics=Metrics())
    assert parallel == serial                      # full ExperimentResult eq
    for key, result in serial.items():
        assert result.outcomes == parallel[key].outcomes
        # every attempt is accounted for: successes + failures
        assert sum(result.outcomes.values()) == \
            len(result.total_samples) + result.n_failures
    # the chaos/5g config is the one that actually exercises failures
    assert serial[fault_set[0].key].n_failures > 0


# -- single-flight recording -------------------------------------------------

def test_single_flight_records_each_script_once(cold_cache, multicore):
    # two distinct experiments, one distinct (kem, sig, policy, seed) script:
    # whichever worker wins the lock records; the loser must load, not re-record
    shared_script = [
        ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0),
        ExperimentConfig(kem="x25519", sig="rsa:1024", scenario="high-loss",
                         max_samples=3, duration=5.0),
    ]
    before = cache.metrics.snapshot()["counters"]
    run_campaign(shared_script, jobs=2, metrics=Metrics())
    after = cache.metrics.snapshot()["counters"]

    def delta(name):
        return after.get(name, 0.0) - before.get(name, 0.0)

    assert delta("cache.script.store") == 1
    assert delta("cache.creds.store") == 1
    assert delta("cache.experiment.store") == 2


# -- fault paths -------------------------------------------------------------

def test_worker_exception_propagates_original(cold_cache, multicore):
    bad = [
        ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0),
        ExperimentConfig(kem="x25519", sig="rsa:1024", duration=-1.0),
    ]
    with pytest.raises(ValueError, match="duration must be positive"):
        run_campaign(bad, jobs=2, metrics=Metrics())
    # the pool shut down cleanly: the executor is immediately reusable
    results = run_campaign(bad[:1], jobs=2, metrics=Metrics())
    assert len(results) == 1


def test_unknown_algorithm_raises_keyerror_serial_and_parallel(cold_cache,
                                                               multicore):
    nope = [ExperimentConfig(kem="nope", sig="rsa:1024"),
            ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)]
    with pytest.raises(KeyError, match="unknown key agreement"):
        run_campaign(nope, jobs=1, metrics=Metrics())
    with pytest.raises(KeyError, match="unknown key agreement"):
        run_campaign(nope, jobs=2, metrics=Metrics())


# -- trace merge -------------------------------------------------------------

def test_traced_first_experiment_identical_serial_and_parallel(tmp_path,
                                                               monkeypatch,
                                                               multicore):
    configs = SMALL_SET[:2]
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial_tracer = Tracer()
    run_campaign(configs, jobs=1, tracer=serial_tracer)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel_tracer = Tracer()
    run_campaign(configs, jobs=2, tracer=parallel_tracer)

    assert serial_tracer.spans, "tracing must record the first handshake"
    assert parallel_tracer.spans == serial_tracer.spans
    assert parallel_tracer.instants == serial_tracer.instants
    assert parallel_tracer.counters == serial_tracer.counters


# -- generic shard fan-out ---------------------------------------------------

def _triple(payload):
    return payload * 3


def _explode_on_two(payload):
    if payload == 2:
        raise ValueError("shard 2 is cursed")
    return payload


def test_run_sharded_serial_preserves_payload_order():
    seen = []
    results = executor.run_sharded(
        _triple, [5, 1, 4], jobs=1,
        on_complete=lambda index, result: seen.append((index, result)))
    assert results == [15, 3, 12]
    assert seen == [(0, 15), (1, 3), (2, 12)]  # serial: completion == order


def test_run_sharded_parallel_equals_serial(multicore):
    payloads = list(range(6))
    serial = executor.run_sharded(_triple, payloads, jobs=1)
    seen = []
    parallel = executor.run_sharded(
        _triple, payloads, jobs=3,
        on_complete=lambda index, result: seen.append((index, result)))
    # results come back in payload order whatever order workers finish in
    assert parallel == serial == [p * 3 for p in payloads]
    assert sorted(seen) == [(i, i * 3) for i in payloads]


def test_run_sharded_single_payload_skips_the_pool(multicore, monkeypatch):
    class PoolBomb:
        def __init__(self, *args, **kwargs):
            raise AssertionError("a single payload must run inline")

    monkeypatch.setattr(executor, "ProcessPoolExecutor", PoolBomb)
    assert executor.run_sharded(_triple, [7], jobs=4) == [21]


def test_run_sharded_propagates_worker_exceptions(multicore):
    with pytest.raises(ValueError, match="shard 2 is cursed"):
        executor.run_sharded(_explode_on_two, [0, 1, 2, 3], jobs=2)
