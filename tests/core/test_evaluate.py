"""Table/figure builders on synthetic experiment results."""

import pytest

from repro.core.evaluate import (
    Table2Row,
    Table3Row,
    attack_metrics,
    ranking,
    table2a,
    table2b,
)
from repro.core.experiment import ExperimentConfig, ExperimentResult


def _fake(kem, sig, total_ms, client_bytes=700, server_bytes=1500, **extra):
    config = ExperimentConfig(kem=kem, sig=sig, **extra)
    total = total_ms / 1e3
    return config.key, ExperimentResult(
        config=config,
        part_a_samples=[total * 0.2],
        part_b_samples=[total * 0.8],
        total_samples=[total],
        n_handshakes=int(60 / (total + 0.001)),
        client_bytes=client_bytes,
        server_bytes=server_bytes,
        client_packets=6,
        server_packets=5,
    )


def test_table2a_rows():
    results = dict([
        _fake("x25519", "rsa:2048", 1.7),
        _fake("kyber512", "rsa:2048", 1.9, client_bytes=1450, server_bytes=2200),
    ])
    rows = table2a(results, ["x25519", "kyber512"])
    assert rows[0].classical and not rows[0].hybrid
    assert not rows[1].classical
    assert rows[0].part_a_ms == pytest.approx(1.7 * 0.2)
    assert rows[1].client_bytes == 1450
    assert rows[0].level == 1


def test_table2b_marks_hybrids():
    results = dict([
        _fake("x25519", "rsa:2048", 1.7),
        _fake("x25519", "p256_dilithium2", 2.0),
    ])
    rows = table2b(results, ["rsa:2048", "p256_dilithium2"])
    assert rows[0].classical
    assert rows[1].hybrid


def test_missing_result_raises():
    with pytest.raises(KeyError, match="missing experiment"):
        table2a({}, ["x25519"])


def test_ranking_log_scale():
    latencies = {"a": 1.0, "b": 10.0, "c": 100.0}
    ranked = ranking(latencies, buckets=10)
    assert ranked == [("a", 0), ("b", 5), ("c", 10)]


def test_ranking_single_value_degenerate():
    assert ranking({"only": 5.0}) == [("only", 0)]


def test_ranking_orders_by_latency():
    latencies = {"fast": 0.9, "mid": 3.0, "slow": 50.0, "mid2": 3.1}
    ranked = ranking(latencies)
    names = [name for name, _ in ranked]
    assert names[0] == "fast" and names[-1] == "slow"
    ranks = dict(ranked)
    assert ranks["mid"] <= ranks["mid2"]


def test_attack_metrics():
    whitebox = [
        Table3Row(level=1, kem="kyber512", sig="sphincs128",
                  handshakes_per_s=100, server_cpu_ms=54.0, client_cpu_ms=9.0,
                  server_library_share={}, client_library_share={},
                  server_packets=30, client_packets=8),
        Table3Row(level=1, kem="x25519", sig="rsa:2048",
                  handshakes_per_s=400, server_cpu_ms=3.0, client_cpu_ms=2.0,
                  server_library_share={}, client_library_share={},
                  server_packets=5, client_packets=6),
    ]
    t2b = [
        Table2Row(level=1, algorithm="sphincs128", classical=False, hybrid=False,
                  part_a_ms=0.3, part_b_ms=15.0, n_total=3700,
                  client_bytes=1001, server_bytes=36153),
        Table2Row(level=1, algorithm="rsa:2048", classical=True, hybrid=False,
                  part_a_ms=0.25, part_b_ms=1.5, n_total=22000,
                  client_bytes=689, server_bytes=1455),
    ]
    metrics = attack_metrics(whitebox, t2b)
    assert metrics.worst_cpu_ratio[2] == pytest.approx(6.0)
    assert metrics.worst_cpu_ratio[1] == "sphincs128"
    assert metrics.worst_amplification[0] == "sphincs128"
    assert metrics.worst_amplification[1] == pytest.approx(36153 / 1001)
