"""Executor flight recording: event stream shape, ETA inputs, no perturbation."""

import pytest

from repro.core import executor
from repro.core.executor import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.obs.metrics import Metrics
from repro.obs.recorder import FlightRecorder

SMALL_SET = [
    ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0),
    ExperimentConfig(kem="p256", sig="rsa:1024", duration=5.0),
]


@pytest.fixture
def cold_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture
def multicore(monkeypatch):
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 4)


def events_of(recorder, kind):
    return [e for e in recorder.events if e["event"] == kind]


def test_serial_campaign_emits_bracketed_task_events(cold_cache):
    recorder = FlightRecorder()
    run_campaign(SMALL_SET, jobs=1, set_name="small", recorder=recorder)
    kinds = [e["event"] for e in recorder.events]
    assert kinds[0] == "campaign_begin" and kinds[-1] == "campaign_end"
    starts = events_of(recorder, "task_start")
    finishes = events_of(recorder, "task_finish")
    assert len(starts) == len(finishes) == len(SMALL_SET)
    assert all(s["mode"] == "serial" and s["set"] == "small" for s in starts)
    assert all(s["cached"] is False for s in starts)       # cold cache
    assert all(s["est_cost"] > 0 for s in starts)
    assert all(f["host_seconds"] > 0 for f in finishes)
    assert all(f["outcomes"] == {"success": 3} for f in finishes)
    assert recorder.events[-1]["host_seconds"] > 0


def test_serial_warm_cache_marks_tasks_cached(cold_cache):
    run_campaign(SMALL_SET, jobs=1)
    recorder = FlightRecorder()
    run_campaign(SMALL_SET, jobs=1, recorder=recorder)
    assert all(s["cached"] is True for s in events_of(recorder, "task_start"))


def test_parallel_campaign_emits_schedule_and_worker_events(
        cold_cache, multicore):
    run_campaign(SMALL_SET[:1], jobs=1)          # warm one of two
    recorder = FlightRecorder()
    run_campaign(SMALL_SET + [
        ExperimentConfig(kem="kyber512", sig="dilithium2", duration=5.0),
    ], jobs=2, set_name="mix", recorder=recorder)

    (schedule,) = events_of(recorder, "schedule")
    assert schedule["hits"] == 1 and schedule["dispatched"] == 2
    (hit,) = events_of(recorder, "cache_hit")
    assert hit["key"] == SMALL_SET[0].key
    finishes = events_of(recorder, "task_finish")
    assert len(finishes) == 2
    assert all(f["mode"] == "worker" for f in finishes)
    assert all(f["host_seconds"] > 0 for f in finishes)
    # per-worker cache traffic rides along (each task records its script)
    assert all("cache" in f for f in finishes)
    assert events_of(recorder, "campaign_end")


def test_single_miss_inline_path_records_inline_mode(cold_cache, multicore):
    run_campaign(SMALL_SET, jobs=1)              # warm both
    extra = ExperimentConfig(kem="kyber512", sig="dilithium2", duration=5.0)
    recorder = FlightRecorder()
    run_campaign(SMALL_SET + [extra], jobs=2, recorder=recorder)
    (finish,) = events_of(recorder, "task_finish")
    assert finish["mode"] == "inline" and finish["key"] == extra.key
    assert len(events_of(recorder, "cache_hit")) == 2


def test_recorder_does_not_perturb_results_or_metrics(
        tmp_path, monkeypatch, multicore):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "bare"))
    bare_metrics = Metrics()
    bare = run_campaign(SMALL_SET, jobs=1, metrics=bare_metrics)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "recorded"))
    recorded_metrics = Metrics()
    recorded = run_campaign(SMALL_SET, jobs=1, metrics=recorded_metrics,
                            recorder=FlightRecorder())
    assert recorded == bare                      # full ExperimentResult eq
    assert recorded_metrics.snapshot() == bare_metrics.snapshot()
