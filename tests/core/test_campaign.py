"""Campaign set definitions (Appendix B naming)."""

import pytest

from repro.core import campaign
from repro.core.campaign import EXPERIMENT_SETS, all_kem, all_sig, level
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES


def test_all_kem_set():
    configs = all_kem()
    assert len(configs) == len(ALL_KEM_NAMES)
    assert all(cfg.sig == "rsa:2048" for cfg in configs)
    assert [cfg.kem for cfg in configs] == ALL_KEM_NAMES


def test_all_sig_set():
    configs = all_sig()
    assert len(configs) == len(ALL_SIG_NAMES)
    assert all(cfg.kem == "x25519" for cfg in configs)


def test_scenario_sets_cover_all_scenarios():
    configs = campaign.all_kem_scenarios()
    scenarios = {cfg.scenario for cfg in configs}
    assert scenarios == {"none", "high-loss", "low-bandwidth", "high-delay",
                         "lte-m", "5g"}
    assert len(configs) == 6 * len(ALL_KEM_NAMES)


def test_level_sets_include_baselines_and_combos():
    configs = level(1)
    pairs = {(cfg.kem, cfg.sig) for cfg in configs}
    # all KA x SA combos of the level
    assert ("kyber512", "dilithium2") in pairs
    assert ("bikel1", "sphincs128") in pairs
    # independence-model baselines
    assert ("kyber512", "rsa:2048") in pairs
    assert ("x25519", "dilithium2") in pairs
    assert ("x25519", "rsa:2048") in pairs
    # no duplicates
    assert len(configs) == len({cfg.key for cfg in configs})


def test_nopush_sets_use_default_policy():
    configs = level(3, nopush=True)
    assert all(cfg.policy == "default" for cfg in configs)


def test_perf_sets_enable_profiling():
    configs = level(5, perf=True)
    assert all(cfg.profiling for cfg in configs)


def test_table3_perf_set_matches_table3_pairs():
    from repro.core.evaluate import TABLE3_PAIRS

    configs = EXPERIMENT_SETS["table3-perf"]()
    assert [(c.kem, c.sig) for c in configs] == [(k, s) for _, k, s in TABLE3_PAIRS]
    assert all(c.profiling for c in configs)


def test_all_named_sets_resolve():
    for name, factory in EXPERIMENT_SETS.items():
        configs = factory()
        assert configs, name
        assert len({c.key for c in configs}) == len(configs), f"{name} has duplicates"


def test_unknown_set_rejected():
    with pytest.raises(KeyError, match="unknown experiment set"):
        campaign.run_set("level9")


def test_run_set_small(monkeypatch):
    """run_set wires progress + results; exercise with a tiny stub set."""
    calls = []
    monkeypatch.setitem(
        EXPERIMENT_SETS, "tiny",
        lambda: [campaign.ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0)])
    results = campaign.run_set("tiny", progress=lambda *a: calls.append(a))
    assert len(results) == 1
    assert calls and calls[0][0] == "tiny"


def test_run_set_parallel_matches_serial(monkeypatch, tmp_path):
    """--jobs N routes through the executor and reproduces the serial run."""
    stub = lambda: [  # noqa: E731
        campaign.ExperimentConfig(kem="x25519", sig="rsa:1024", duration=5.0),
        campaign.ExperimentConfig(kem="p256", sig="rsa:1024", duration=5.0),
    ]
    monkeypatch.setitem(EXPERIMENT_SETS, "tiny2", stub)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial = campaign.run_set("tiny2", jobs=1)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel = campaign.run_set("tiny2", jobs=2)
    assert parallel == serial
