"""Report rendering and CSV export."""

import csv
import io

from repro.core.analysis import Deviation
from repro.core.evaluate import AttackMetrics, Table2Row, Table3Row, Table4Row
from repro.core.report import (
    deviations_csv,
    latencies_csv,
    render_attack_metrics,
    render_deviations,
    render_ranking,
    render_table2,
    render_table3,
    render_table4,
)


def _row(algorithm="kyber512", classical=False, hybrid=False, level=1):
    return Table2Row(level=level, algorithm=algorithm, classical=classical,
                     hybrid=hybrid, part_a_ms=0.2, part_b_ms=1.78,
                     n_total=20800, client_bytes=1457, server_bytes=2191)


def test_render_table2_contains_rows_and_legend():
    text = render_table2([_row(), _row("x25519", classical=True)], "Table 2a")
    assert "kyber512" in text and "x25519" in text
    assert "20800" in text
    assert "1457" in text
    assert "pre-quantum" in text
    assert "*x25519" in text  # classical marker


def test_render_table2_level_grouping():
    rows = [_row("a", level=1), _row("b", level=1), _row("c", level=3)]
    lines = render_table2(rows, "t").splitlines()
    assert lines[2].strip().startswith("1")
    assert lines[3].strip().startswith("b")  # level column omitted on repeat
    assert lines[4].strip().startswith("3")


def test_render_table3():
    row = Table3Row(level=1, kem="bikel1", sig="dilithium2", handshakes_per_s=231,
                    server_cpu_ms=1.8, client_cpu_ms=6.5,
                    server_library_share={"libcrypto": 0.7, "kernel": 0.2, "libssl": 0.1},
                    client_library_share={"libssl": 0.8, "kernel": 0.2},
                    server_packets=6, client_packets=7)
    text = render_table3([row])
    assert "bikel1" in text
    assert "libssl 80%" in text  # BIKE's client quirk visible


def test_render_table4():
    row = Table4Row(level=1, algorithm="hqc128", classical=False,
                    medians_ms={"none": 1.78, "high-loss": 2.05,
                                "low-bandwidth": 51.29, "high-delay": 1002.22,
                                "lte-m": 251.31, "5g": 46.31})
    text = render_table4([row], "Table 4a")
    assert "1002.22" in text and "hqc128" in text


def test_render_deviations_and_csv():
    deviations = [Deviation(kem="bikel1", sig="sphincs128", level=1,
                            expected=0.020, measured=0.0155)]
    text = render_deviations(deviations, "Figure 3b")
    assert "+4.50" in text  # E-M in ms, faster than predicted
    parsed = list(csv.DictReader(io.StringIO(deviations_csv(deviations))))
    assert parsed[0]["kem"] == "bikel1"
    assert float(parsed[0]["deviationMs"]) == 4.5


def test_render_ranking():
    text = render_ranking([("kyber512", 0), ("p521", 9)], [("falcon512", 0)])
    assert "kyber512:0" in text and "p521:9" in text and "falcon512:0" in text


def test_render_attack_metrics():
    metrics = AttackMetrics(worst_cpu_ratio=("kyber512", "sphincs128", 6.0),
                            worst_amplification=("sphincs256", 96.0))
    text = render_attack_metrics(metrics)
    assert "6.0x" in text and "96.0x" in text and "QUIC" in text


def test_latencies_csv_columns():
    parsed = list(csv.DictReader(io.StringIO(latencies_csv([_row()]))))
    row = parsed[0]
    assert row["algorithm"] == "kyber512"
    assert float(row["partAMedian"]) == 0.2
    assert float(row["partAllMedian"]) == 1.98
    assert row["nTotal"] == "20800"
