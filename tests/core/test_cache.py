"""Disk cache behaviour."""

from repro import cache


def test_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.store("unit", "key-1", {"a": [1, 2, 3]})
    assert cache.load("unit", "key-1") == {"a": [1, 2, 3]}


def test_miss_returns_none(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cache.load("unit", "missing") is None


def test_keys_are_isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.store("unit", "key-a", 1)
    cache.store("unit", "key-b", 2)
    cache.store("other", "key-a", 3)
    assert cache.load("unit", "key-a") == 1
    assert cache.load("unit", "key-b") == 2
    assert cache.load("other", "key-a") == 3


def test_corrupt_entry_self_heals(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.store("unit", "key-c", "value")
    path = cache._key_path("unit", "key-c")
    path.write_bytes(b"not a pickle")
    assert cache.load("unit", "key-c") is None
    assert not path.exists()  # corrupt file removed


def test_store_is_atomic_no_tmp_left(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.store("unit", "key-d", list(range(100)))
    leftovers = list(tmp_path.rglob("*.tmp"))
    assert leftovers == []


def test_schema_version_in_key(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.store("unit", "key-e", "v")
    original = cache.SCHEMA_VERSION
    try:
        cache.SCHEMA_VERSION = original + 1
        assert cache.load("unit", "key-e") is None  # version bump invalidates
    finally:
        cache.SCHEMA_VERSION = original
    assert cache.load("unit", "key-e") == "v"


def test_default_cache_dir_is_repo_local(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    path = cache.cache_dir()
    assert path.name == ".cache"
    assert (path.parent / "pyproject.toml").exists()  # repo root
