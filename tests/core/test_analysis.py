"""Independence model (§5.2): E(k,s) arithmetic on synthetic results."""

import pytest

from repro.core.analysis import Deviation, IndependenceModel, deviations_for_levels
from repro.core.experiment import ExperimentConfig, ExperimentResult


def _fake_result(kem, sig, total_ms, policy="optimized"):
    config = ExperimentConfig(kem=kem, sig=sig, policy=policy)
    total = total_ms / 1e3
    return config.key, ExperimentResult(
        config=config,
        part_a_samples=[total / 4],
        part_b_samples=[3 * total / 4],
        total_samples=[total],
        n_handshakes=1000,
        client_bytes=700, server_bytes=1500,
        client_packets=6, server_packets=5,
    )


def _results(latency_fn, kems, sigs, policy="optimized"):
    results = {}
    for kem in kems + ["x25519"]:
        for sig in sigs + ["rsa:2048"]:
            key, result = _fake_result(kem, sig, latency_fn(kem, sig), policy)
            results[key] = result
    return results


KEMS = ["kyber512", "bikel1"]
SIGS = ["dilithium2", "falcon512"]

KEM_COST = {"x25519": 1.0, "kyber512": 1.5, "bikel1": 3.0}
SIG_COST = {"rsa:2048": 2.0, "dilithium2": 1.2, "falcon512": 1.4}


def test_perfectly_additive_world_has_zero_deviation():
    results = _results(lambda k, s: KEM_COST[k] + SIG_COST[s], KEMS, SIGS)
    model = IndependenceModel(results, "optimized")
    for kem in KEMS:
        for sig in SIGS:
            dev = model.deviation(kem, sig, level=1)
            assert dev.deviation == pytest.approx(0.0, abs=1e-12)


def test_interaction_shows_as_deviation():
    def latency(kem, sig):
        base = KEM_COST[kem] + SIG_COST[sig]
        if kem == "bikel1" and sig == "falcon512":
            return base - 0.5  # this combination is faster than predicted
        return base

    results = _results(latency, KEMS, SIGS)
    model = IndependenceModel(results, "optimized")
    dev = model.deviation("bikel1", "falcon512", level=1)
    assert dev.deviation == pytest.approx(0.5e-3)  # E - M > 0: faster
    assert model.deviation("kyber512", "dilithium2", 1).deviation == pytest.approx(0)


def test_expected_formula():
    results = _results(lambda k, s: KEM_COST[k] + SIG_COST[s], KEMS, SIGS)
    model = IndependenceModel(results, "optimized")
    # E(k, s) = M(k, rsa2048) + M(x25519, s) - M(x25519, rsa2048)
    expected = model.expected("kyber512", "falcon512")
    assert expected == pytest.approx((1.5 + 2.0 + 1.0 + 1.4 - 1.0 - 2.0) / 1e3)


def test_missing_baseline_raises():
    key, result = _fake_result("kyber512", "dilithium2", 3.0)
    model = IndependenceModel({key: result}, "optimized")
    with pytest.raises(KeyError, match="missing measurement"):
        model.deviation("kyber512", "dilithium2", 1)


def test_deviations_for_levels_shape():
    results = _results(lambda k, s: KEM_COST[k] + SIG_COST[s], KEMS, SIGS)
    groups = {1: {"kems": KEMS, "sigs": SIGS}}
    deviations = deviations_for_levels(results, "optimized", groups)
    assert len(deviations) == 4
    assert all(isinstance(d, Deviation) for d in deviations)
    assert {(d.kem, d.sig) for d in deviations} == {
        (k, s) for k in KEMS for s in SIGS}


def test_policy_scoping():
    push = _results(lambda k, s: KEM_COST[k] + SIG_COST[s], KEMS, SIGS, "optimized")
    model = IndependenceModel(push, "default")
    with pytest.raises(KeyError):
        model.expected("kyber512", "dilithium2")
