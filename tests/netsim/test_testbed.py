"""Testbed end-to-end: real handshakes, scripted replay, determinism."""

import pytest

from repro.crypto.drbg import Drbg
from repro.netsim.costmodel import CostModel
from repro.netsim.netem import SCENARIOS
from repro.netsim.scripted import record_script, scripted_apps
from repro.netsim.testbed import Testbed, run_simulated_handshake
from repro.tls.certs import make_server_credentials
from repro.tls.server import BufferPolicy


@pytest.fixture(scope="module")
def rsa_creds():
    return make_server_credentials("rsa:1024", Drbg("testbed-creds"))


def _bed(creds, kem="x25519", sig="rsa:1024", **kwargs):
    cert, sk, store = creds
    return Testbed(kem, sig, cert, sk, store, **kwargs)


def test_real_handshake_trace_sanity(rsa_creds):
    trace = _bed(rsa_creds).run_handshake()
    assert 0 < trace.part_a < trace.total
    assert 0 < trace.part_b < trace.total
    assert trace.total == pytest.approx(trace.part_a + trace.part_b)
    assert trace.wall_end >= trace.total
    assert trace.client_wire_bytes > 200
    assert trace.server_wire_bytes > trace.client_wire_bytes
    assert trace.client_packets >= 4 and trace.server_packets >= 3


def test_deterministic_across_runs(rsa_creds):
    t1 = _bed(rsa_creds).run_handshake()
    t2 = _bed(rsa_creds).run_handshake()
    assert t1.part_a == t2.part_a
    assert t1.part_b == t2.part_b
    assert t1.client_wire_bytes == t2.client_wire_bytes


def test_cpu_attribution_present(rsa_creds):
    trace = _bed(rsa_creds).run_handshake()
    assert "libcrypto" in trace.server_cpu
    assert "libssl" in trace.server_cpu
    assert "kernel" in trace.client_cpu
    assert trace.server_cpu["libcrypto"] > trace.client_cpu["libcrypto"]  # RSA sign


def test_scenario_delay_dominates(rsa_creds):
    none = _bed(rsa_creds).run_handshake()
    delayed = _bed(rsa_creds, scenario="high-delay").run_handshake()
    assert delayed.total == pytest.approx(1.0 + none.total, abs=0.05)


def test_scenario_bandwidth_slows_by_bytes(rsa_creds):
    slow = _bed(rsa_creds, scenario="low-bandwidth").run_handshake()
    total_bytes = slow.client_wire_bytes + slow.server_wire_bytes
    assert slow.total > 0.8 * (8 * total_bytes / 1e6) * 0.5


def test_handshake_completes_under_loss(rsa_creds):
    bed = _bed(rsa_creds, scenario="lte-m")
    for _ in range(5):
        trace = bed.run_handshake()
        assert trace.total >= 0.2  # at least one RTT


def test_default_policy_changes_flights_not_bytes(rsa_creds):
    optimized = _bed(rsa_creds).run_handshake()
    default = _bed(rsa_creds, policy=BufferPolicy.DEFAULT).run_handshake()
    # TLS payload identical; packet boundaries and (slightly) header counts differ
    assert abs(default.server_wire_bytes - optimized.server_wire_bytes) < 400
    assert default.flight_labels != optimized.flight_labels


def test_scripted_replay_matches_real(rsa_creds):
    """The regression that justifies the replay architecture."""
    from repro.netsim.scripted import load_credentials

    creds = load_credentials("dilithium2")
    bed = Testbed("kyber512", "dilithium2", creds[0], creds[1], creds[2],
                  drbg=Drbg("script:kyber512:dilithium2:optimized:paper"))
    real = bed.run_handshake()
    script = record_script("kyber512", "dilithium2")
    client, server = scripted_apps(script)
    replay = run_simulated_handshake(
        client, server, scenario=SCENARIOS["none"], netem_drbg=Drbg("n"),
        cost_model=CostModel())
    assert replay.part_a == pytest.approx(real.part_a, rel=1e-9)
    assert replay.part_b == pytest.approx(real.part_b, rel=1e-9)
    assert replay.client_wire_bytes == real.client_wire_bytes
    assert replay.server_wire_bytes == real.server_wire_bytes
    assert replay.client_packets == real.client_packets


def test_scripted_replay_under_loss_completes():
    script = record_script("x25519", "rsa:1024")
    for i in range(10):
        client, server = scripted_apps(script)
        trace = run_simulated_handshake(
            client, server, scenario=SCENARIOS["high-loss"],
            netem_drbg=Drbg(f"loss{i}"), cost_model=CostModel())
        assert trace.total > 0


def test_cwnd_overflow_dilithium5_two_rtt():
    """The paper's §5.4 headline: big PQ flights exceed initcwnd."""
    creds = make_server_credentials("dilithium5", Drbg("d5-creds"))
    bed = Testbed("x25519", "dilithium5", *creds, scenario="high-delay")
    trace = bed.run_handshake()
    assert 1.9 < trace.total < 2.2  # 2 RTT

    small = make_server_credentials("rsa:1024", Drbg("small-creds"))
    bed2 = Testbed("x25519", "rsa:1024", *small, scenario="high-delay")
    assert 0.9 < bed2.run_handshake().total < 1.2  # 1 RTT
