"""Handshake script recording and replay mechanics."""

import pytest

from repro.netsim.scripted import (
    Milestone,
    ScriptedApp,
    ScriptedSend,
    record_script,
    scripted_apps,
)
from repro.tls.actions import Compute, CryptoOp, Send
from repro.tls.server import BufferPolicy


@pytest.fixture(scope="module")
def script():
    return record_script("x25519", "rsa:1024")


def test_script_metadata(script):
    assert script.kem_name == "x25519"
    assert script.sig_name == "rsa:1024"
    assert script.policy == "optimized"


def test_client_script_starts_at_zero(script):
    assert script.client_milestones[0].after_bytes == 0
    # the initial milestone includes a keygen and a ClientHello send
    ops = [a for a in script.client_milestones[0].actions if isinstance(a, Compute)]
    sends = [a for a in script.client_milestones[0].actions if isinstance(a, ScriptedSend)]
    assert any(op.op == "kem_keygen" for c in ops for op in c.ops)
    assert sends and sends[0].label == "ClientHello"


def test_server_script_milestones_increasing(script):
    offsets = [m.after_bytes for m in script.server_milestones]
    assert offsets == sorted(offsets)
    assert offsets[0] > 0  # server acts only after receiving bytes


def test_totals_cover_all_milestones(script):
    assert script.client_total_in >= script.client_milestones[-1].after_bytes
    assert script.server_total_in >= script.server_milestones[-1].after_bytes


def test_replay_fires_on_thresholds(script):
    client, server = scripted_apps(script)
    start_actions = client.start()
    sends = [a for a in start_actions if isinstance(a, Send)]
    assert sends and len(sends[0].data) > 0
    # server: nothing before data
    assert server.start() == []
    assert not server.handshake_complete
    # drip-feed the CH: no action until the threshold
    ch_bytes = sends[0].data
    first_threshold = script.server_milestones[0].after_bytes
    actions = server.receive(ch_bytes[: first_threshold - 1])
    assert actions == []
    actions = server.receive(ch_bytes[first_threshold - 1: first_threshold])
    assert actions  # fires exactly at the threshold


def test_replay_handles_coalesced_delivery(script):
    """All bytes in one burst must fire all milestones in order."""
    client, server = scripted_apps(script)
    client.start()
    server_actions = server.receive(bytes(script.server_total_in))
    labels = [a.label for a in server_actions if isinstance(a, Send)]
    assert labels[0].startswith("SH")


def test_default_policy_script_differs(script):
    nopush = record_script("x25519", "rsa:1024", BufferPolicy.DEFAULT)
    push_labels = [a.label for m in script.server_milestones
                   for a in m.actions if isinstance(a, ScriptedSend)]
    nopush_labels = [a.label for m in nopush.server_milestones
                     for a in m.actions if isinstance(a, ScriptedSend)]
    assert push_labels != nopush_labels
    # but the byte totals on the wire agree
    push_total = sum(a.length for m in script.server_milestones
                     for a in m.actions if isinstance(a, ScriptedSend))
    nopush_total = sum(a.length for m in nopush.server_milestones
                       for a in m.actions if isinstance(a, ScriptedSend))
    assert push_total == nopush_total


def test_handshake_complete_semantics():
    milestones = (Milestone(0, (ScriptedSend(10, "x"),)),
                  Milestone(5, (Compute((CryptoOp("key_schedule"),)),)))
    app = ScriptedApp(milestones, total_in=7, is_client=True)
    app.start()
    assert not app.handshake_complete
    app.receive(b"12345")
    assert not app.handshake_complete  # milestones done but bytes short
    app.receive(b"67")
    assert app.handshake_complete
