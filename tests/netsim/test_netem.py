"""netem emulation: delay, rate, loss — and the paper's scenario table."""

import pytest

from repro.crypto.drbg import Drbg
from repro.netsim.eventloop import EventLoop
from repro.netsim.netem import SCENARIOS, Link, NetemConfig
from repro.netsim.packets import Segment


def _segment(size=934):
    return Segment("a", "b", seq=0, payload=b"\x00" * (size - 66), ack=0)


def _run_one(config, drbg=None, size=934):
    loop = EventLoop()
    arrivals = []
    taps = []
    link = Link(loop, config, drbg or Drbg("netem"),
                deliver=lambda seg: arrivals.append(loop.now),
                tap=lambda t, seg: taps.append(t))
    link.transmit(_segment(size))
    loop.run()
    return arrivals, taps


def test_propagation_delay():
    config = NetemConfig("d", rtt=0.2, rate_bps=1e12)
    arrivals, _ = _run_one(config)
    assert arrivals[0] == pytest.approx(0.1, abs=1e-6)


def test_serialization_at_rate():
    config = NetemConfig("r", rate_bps=1e6)
    arrivals, taps = _run_one(config, size=1000)
    assert arrivals[0] == pytest.approx(8e-3, rel=1e-6)  # 1000 B at 1 Mbit/s
    assert taps[0] == pytest.approx(8e-3, rel=1e-6)


def test_back_to_back_frames_queue():
    config = NetemConfig("q", rate_bps=1e6)
    loop = EventLoop()
    arrivals = []
    link = Link(loop, config, Drbg("x"), deliver=lambda seg: arrivals.append(loop.now))
    link.transmit(_segment(1000))
    link.transmit(_segment(1000))
    loop.run()
    assert arrivals[1] - arrivals[0] == pytest.approx(8e-3, rel=1e-6)


def test_loss_statistics():
    config = NetemConfig("l", loss=0.10, rate_bps=1e12)
    loop = EventLoop()
    delivered = []
    link = Link(loop, config, Drbg("loss-stats"),
                deliver=lambda seg: delivered.append(seg))
    for _ in range(2000):
        link.transmit(_segment())
    loop.run()
    assert 1700 <= len(delivered) <= 1890  # ~1800 expected


def test_loss_is_seed_deterministic():
    config = NetemConfig("l", loss=0.5, rate_bps=1e12)

    def pattern(seed):
        loop = EventLoop()
        delivered = set()
        link = Link(loop, config, Drbg(seed),
                    deliver=lambda seg: delivered.add(seg.frame_id))
        segments = [_segment() for _ in range(50)]
        for seg in segments:
            link.transmit(seg)
        loop.run()
        # positions (not global frame ids) that survived
        return [i for i, seg in enumerate(segments) if seg.frame_id in delivered]

    assert pattern("seed-1") == pattern("seed-1")
    assert pattern("seed-1") != pattern("seed-2")


def test_tap_sees_dropped_frames():
    """The tap records what was sent, even frames netem then drops."""
    config = NetemConfig("l", loss=1.0, rate_bps=1e12)
    arrivals, taps = _run_one(config)
    assert arrivals == [] and len(taps) == 1


def test_paper_scenarios_match_appendix_a():
    assert SCENARIOS["high-loss"].loss == 0.10
    assert SCENARIOS["low-bandwidth"].rate_bps == 1e6
    assert SCENARIOS["high-delay"].rtt == 1.0
    lte = SCENARIOS["lte-m"]
    assert (lte.loss, lte.rtt, lte.rate_bps) == (0.10, 0.200, 1e6)
    g5 = SCENARIOS["5g"]
    assert (g5.loss, g5.rtt, g5.rate_bps) == (0.04, 0.044, 880e6)
    assert SCENARIOS["none"].loss == 0 and SCENARIOS["none"].rtt == 0


def test_syn_frames_carry_extra_options():
    seg = Segment("a", "b", seq=0, payload=b"", ack=0, syn=True)
    assert seg.wire_bytes == 74
    plain = Segment("a", "b", seq=0, payload=b"", ack=0)
    assert plain.wire_bytes == 66


# -- combined --scenario specs ------------------------------------------------

def test_split_scenario_defaults_and_single_components():
    from repro.netsim.netem import split_scenario

    assert split_scenario("none") == ("none", "full")
    assert split_scenario("") == ("none", "full")
    assert split_scenario("lte-m") == ("lte-m", "full")
    assert split_scenario("resume") == ("none", "resume")


def test_split_scenario_combos_in_either_order():
    from repro.netsim.netem import split_scenario

    assert split_scenario("lte-m+resume") == ("lte-m", "resume")
    assert split_scenario("mtls+5g") == ("5g", "mtls")


def test_split_scenario_rejects_bad_specs():
    from repro.netsim.netem import split_scenario

    with pytest.raises(ValueError, match="unknown scenario component"):
        split_scenario("bogus")
    with pytest.raises(ValueError, match="two netem"):
        split_scenario("lte-m+5g")
    with pytest.raises(ValueError, match="two session"):
        split_scenario("resume+hrr")
