"""Passive timestamper: phase extraction and accounting."""

import pytest

from repro.netsim.packets import Segment
from repro.netsim.timestamper import Timestamper


def _seg(labels=(), payload=b"x", syn=False):
    return Segment("a", "b", seq=0, payload=payload, ack=0, labels=labels, syn=syn)


def test_phase_extraction():
    tap = Timestamper()
    tap.tap("c2s")(0.0, _seg(syn=True, payload=b""))
    tap.tap("c2s")(1.0, _seg(("ClientHello",)))
    tap.tap("s2c")(1.4, _seg(("SH",)))
    tap.tap("s2c")(1.6, _seg(("EE+Cert",)))
    tap.tap("c2s")(2.0, _seg(("CCS+Fin",)))
    t_ch, t_sh, t_fin = tap.phase_times()
    assert (t_ch, t_sh, t_fin) == (1.0, 1.4, 2.0)
    assert tap.part_a() == pytest.approx(0.4)
    assert tap.part_b() == pytest.approx(0.6)
    assert tap.total() == pytest.approx(1.0)


def test_first_occurrence_wins_on_retransmission():
    tap = Timestamper()
    tap.tap("c2s")(1.0, _seg(("ClientHello",)))
    tap.tap("c2s")(2.0, _seg(("ClientHello",)))  # retransmit
    tap.tap("s2c")(2.5, _seg(("SH",)))
    tap.tap("c2s")(3.0, _seg(("CCS+Fin",)))
    assert tap.phase_times()[0] == 1.0


def test_combined_flight_labels_match():
    """A segment carrying SH+EE+Cert (default buffering) still marks SH —
    like the paper's tap spotting the plaintext ServerHello header inside
    a coalesced packet."""
    tap = Timestamper()
    tap.tap("c2s")(0.0, _seg(("ClientHello",)))
    tap.tap("s2c")(0.5, _seg(("SH+EE+Cert+CV+Fin",)))
    tap.tap("c2s")(1.0, _seg(("CCS+Fin",)))
    assert tap.part_a() == pytest.approx(0.5)
    assert tap.part_b() == pytest.approx(0.5)


def test_multi_label_segments():
    tap = Timestamper()
    tap.tap("c2s")(0.0, _seg(("ClientHello",)))
    tap.tap("s2c")(0.5, _seg(("SH", "EE+Cert")))
    tap.tap("c2s")(1.0, _seg(("CCS+Fin",)))
    assert tap.part_a() == pytest.approx(0.5)


def test_missing_markers_raise():
    tap = Timestamper()
    tap.tap("c2s")(0.0, _seg(("ClientHello",)))
    with pytest.raises(RuntimeError, match="markers"):
        tap.phase_times()


def test_missing_marker_error_names_each_marker_and_direction():
    tap = Timestamper()
    tap.tap("c2s")(0.0, _seg(("ClientHello",)))
    tap.tap("s2c")(0.5, _seg(("SH",)))
    with pytest.raises(RuntimeError) as excinfo:
        tap.phase_times()
    message = str(excinfo.value)
    assert "CCS+Fin (c2s)" in message
    assert "ClientHello" not in message  # only the absentees are listed
    assert "2 frames tapped" in message


def test_empty_tap_lists_all_three_markers():
    with pytest.raises(RuntimeError) as excinfo:
        Timestamper().phase_times()
    message = str(excinfo.value)
    for expected in ("ClientHello (c2s)", "SH (s2c)", "CCS+Fin (c2s)"):
        assert expected in message


def test_byte_and_packet_accounting():
    tap = Timestamper()
    tap.tap("c2s")(0.0, _seg(payload=b"x" * 100))
    tap.tap("c2s")(0.1, _seg(payload=b"", syn=True))
    tap.tap("s2c")(0.2, _seg(payload=b"y" * 50))
    assert tap.bytes_in_direction("c2s") == 166 + 74
    assert tap.bytes_in_direction("s2c") == 116
    assert tap.packets_in_direction("c2s") == 2
    assert tap.packets_in_direction("s2c") == 1
