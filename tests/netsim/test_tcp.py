"""Simplified TCP: handshake, segmentation, slow start, loss recovery."""

from repro.netsim.eventloop import EventLoop
from repro.netsim.tcp import INIT_CWND, MSS, TcpEndpoint


class _Loss:
    """Deterministic drop list: drop the i-th c2s data transmission."""

    def __init__(self, drop_indices):
        self.drop = set(drop_indices)
        self.count = 0


def make_pair(loss_c2s=(), rtt=0.01, tap=None):
    loop = EventLoop()
    received = {"client": b"", "server": b""}
    established = []

    client = TcpEndpoint(loop, "client", "server",
                         on_deliver=lambda d: received.__setitem__(
                             "client", received["client"] + d),
                         on_established=lambda: established.append(True))
    server = TcpEndpoint(loop, "server", "client",
                         on_deliver=lambda d: received.__setitem__(
                             "server", received["server"] + d))

    loss = _Loss(loss_c2s)

    def deliver_to_server(seg):
        server.on_segment(seg)

    def c2s_transmit(seg):
        index = loss.count
        loss.count += 1
        if index in loss.drop:
            return
        delay = rtt / 2
        loop.schedule(delay, lambda: server.on_segment(seg))

    class FakeLink:
        def __init__(self, fn):
            self.transmit = fn

    def s2c_transmit(seg):
        loop.schedule(rtt / 2, lambda: client.on_segment(seg))

    client.attach_link(FakeLink(c2s_transmit))
    server.attach_link(FakeLink(s2c_transmit))
    server.listen()
    client.connect()
    return loop, client, server, received, established


def test_connection_establishment():
    loop, client, server, _, established = make_pair()
    loop.run(until=1.0)
    assert established == [True]
    assert client.state == "established"


def test_lossless_transfer_in_order():
    loop, client, server, received, _ = make_pair()
    loop.run(until=0.1)
    payload = bytes(range(256)) * 100  # 25.6 kB
    client.send(payload)
    loop.run(until=5.0)
    assert received["server"] == payload


def test_bidirectional_transfer():
    loop, client, server, received, _ = make_pair()
    loop.run(until=0.1)
    client.send(b"request " * 100)
    loop.run(until=1.0)
    server.send(b"response " * 2000)
    loop.run(until=5.0)
    assert received["server"] == b"request " * 100
    assert received["client"] == b"response " * 2000


def test_mss_segmentation():
    loop, client, server, received, _ = make_pair()
    loop.run(until=0.1)
    before = client.packets_sent
    client.send(b"x" * (3 * MSS))
    loop.run(until=1.0)
    # 3 full segments (plus ACK-only frames don't count as data)
    data_packets = client.packets_sent - before
    assert data_packets == 3
    assert received["server"] == b"x" * (3 * MSS)


def test_no_coalescing_across_push_boundaries():
    loop, client, server, received, _ = make_pair()
    loop.run(until=0.1)
    before = client.packets_sent
    client.send(b"a" * 100, label="one")
    client.send(b"b" * 100, label="two")
    loop.run(until=1.0)
    assert client.packets_sent - before == 2  # two pushes -> two segments
    assert received["server"] == b"a" * 100 + b"b" * 100


def test_initcwnd_limits_first_flight():
    """With a long RTT, only INIT_CWND segments leave before any ACK."""
    loop, client, server, received, _ = make_pair(rtt=2.0)
    loop.run(until=3.0)  # handshake done (1 RTT)
    before = client.packets_sent
    client.send(b"y" * (MSS * 30))
    loop.run(until=3.9)  # less than half an RTT: no ACKs yet
    assert client.packets_sent - before == INIT_CWND
    loop.run(until=60.0)
    assert received["server"] == b"y" * (MSS * 30)


def test_slow_start_doubles_window():
    loop, client, server, received, _ = make_pair(rtt=1.0)
    loop.run(until=2.0)
    client.send(b"z" * (MSS * 35))
    # window 1: 10 segments; after ~1 RTT of ACKs cwnd reaches 20
    loop.run(until=2.9)
    first_window = client.packets_sent
    loop.run(until=3.9)
    second_window = client.packets_sent - first_window
    assert second_window >= 18  # ~20 data segments (ACK pacing may vary)
    loop.run(until=30.0)
    assert received["server"] == b"z" * (MSS * 35)


def test_single_loss_recovered_by_retransmission():
    # drop the 3rd c2s transmission (SYN=0, ACK=1, data starts at 2)
    loop, client, server, received, _ = make_pair(loss_c2s=[3])
    loop.run(until=0.1)
    payload = b"q" * (MSS * 6)
    client.send(payload)
    loop.run(until=10.0)
    assert received["server"] == payload


def test_syn_loss_recovered():
    loop, client, server, received, established = make_pair(loss_c2s=[0])
    loop.run(until=5.0)
    assert established == [True]
    client.send(b"after syn loss")
    loop.run(until=10.0)
    assert received["server"] == b"after syn loss"


def test_multiple_losses_recovered():
    loop, client, server, received, _ = make_pair(loss_c2s=[2, 5, 9])
    loop.run(until=0.1)
    payload = bytes([i & 0xFF for i in range(MSS * 12)])
    client.send(payload)
    loop.run(until=30.0)
    assert received["server"] == payload


def test_out_of_order_segments_reassembled():
    """Loss forces later segments to queue out-of-order at the receiver."""
    loop, client, server, received, _ = make_pair(loss_c2s=[2])
    loop.run(until=0.1)
    payload = b"".join(bytes([i]) * MSS for i in range(8))
    client.send(payload)
    loop.run(until=10.0)
    assert received["server"] == payload


def test_wire_byte_accounting():
    loop, client, server, received, _ = make_pair()
    loop.run(until=0.1)
    sent_before = client.bytes_sent
    client.send(b"w" * 100)
    loop.run(until=1.0)
    # 100 payload + 66 header on the data segment
    assert client.bytes_sent - sent_before == 166


def test_labels_attached_to_segments():
    loop = EventLoop()
    collected = []

    class TapLink:
        def transmit(self, seg):
            collected.append(seg)
            loop.schedule(0.001, lambda: server.on_segment(seg))

    class BackLink:
        def transmit(self, seg):
            loop.schedule(0.001, lambda: client.on_segment(seg))

    client = TcpEndpoint(loop, "client", "server", on_deliver=lambda d: None)
    server = TcpEndpoint(loop, "server", "client", on_deliver=lambda d: None)
    client.attach_link(TapLink())
    server.attach_link(BackLink())
    server.listen()
    client.connect()
    loop.run(until=0.1)
    client.send(b"hello", label="Greeting")
    loop.run(until=1.0)
    data_segments = [s for s in collected if s.payload]
    assert data_segments and data_segments[0].labels == ("Greeting",)
