"""Link-level fault injection and the netem stage-ordering regression.

The golden timings here pin the corrected qdisc stage order (loss decided
*before* the rate stage, so dropped frames never occupy the serializer).
They were recomputed deliberately when the seed code's ordering bug was
fixed; a change in these values means the link emulation changed.
"""

import pytest

from repro.crypto.drbg import Drbg
from repro.faults.plan import CORRUPT_DELIVER, FaultPlan
from repro.netsim.eventloop import EventLoop
from repro.netsim.netem import Link, NetemConfig, SCENARIOS
from repro.netsim.packets import Segment
from repro.netsim.testbed import Testbed
from repro.obs.metrics import Metrics
from repro.tls.certs import make_server_credentials


def _segment(size=1000, payload_byte=b"\x00"):
    return Segment("a", "b", seq=0, payload=payload_byte * (size - 66), ack=0)


def _ack():
    return Segment("a", "b", seq=0, payload=b"", ack=0, is_ack_only=True)


def _run(config, plan=None, segments=None, seed="faults", metrics=None):
    loop = EventLoop()
    arrivals = []
    link = Link(loop, config, Drbg(seed),
                deliver=lambda seg: arrivals.append((loop.now, seg)),
                plan=plan, metrics=metrics or Metrics(), name="test")
    for seg in segments or [_segment()]:
        link.transmit(seg)
    loop.run()
    return arrivals


# -- stage ordering: loss before rate (the seed-code regression) -------------

def test_dropped_frame_does_not_consume_serializer():
    # seed "drop-seed-0": first loss draw 0.466 (< 0.5, dropped), second
    # 0.808 (delivered). The survivor serializes from t=0 — under the old
    # (wrong) order it would have queued behind the dropped frame at 16 ms.
    config = NetemConfig("l", loss=0.5, rate_bps=1e6)
    arrivals = _run(config, seed="drop-seed-0",
                    segments=[_segment(), _segment()])
    assert len(arrivals) == 1
    assert arrivals[0][0] == pytest.approx(8e-3, rel=1e-9)


def test_tap_still_records_dropped_frames_without_busy_advance():
    config = NetemConfig("l", loss=0.5, rate_bps=1e6)
    loop = EventLoop()
    taps, arrivals = [], []
    link = Link(loop, config, Drbg("drop-seed-0"),
                deliver=lambda seg: arrivals.append(loop.now),
                tap=lambda t, seg: taps.append(t))
    link.transmit(_segment())
    link.transmit(_segment())
    loop.run()
    assert len(taps) == 2 and len(arrivals) == 1
    assert taps[0] == pytest.approx(0.0, abs=1e-12)      # dropped: tap at wire time
    assert taps[1] == pytest.approx(8e-3, rel=1e-9)      # survivor fully serialized


# -- pinned scenario goldens (recomputed for the corrected ordering) ---------

@pytest.fixture(scope="module")
def golden_creds():
    return make_server_credentials("rsa:1024", Drbg("golden-creds"))


def test_low_bandwidth_golden_timing(golden_creds):
    trace = Testbed("x25519", "rsa:1024", *golden_creds,
                    scenario="low-bandwidth").run_handshake()
    assert trace.outcome.ok
    assert trace.part_a == pytest.approx(0.00212, rel=1e-9)
    assert trace.part_b == pytest.approx(0.0082, rel=1e-9)
    assert trace.total == pytest.approx(0.01032, rel=1e-9)


def test_lte_m_golden_timing(golden_creds):
    bed = Testbed("x25519", "rsa:1024", *golden_creds, scenario="lte-m")
    first = bed.run_handshake()
    second = bed.run_handshake()
    assert first.outcome.ok and second.outcome.ok
    assert first.total == pytest.approx(0.20928, rel=1e-9)
    # the second handshake sees fresh loss randomness (fork "netem:1")
    assert second.total == pytest.approx(0.6554102, rel=1e-9)


# -- corruption --------------------------------------------------------------

def test_checksum_corruption_burns_capacity_but_never_delivers():
    # corrupt=1.0 hits every data frame; the trailing ACK-only frame (no
    # payload, never corrupted) must queue behind the corrupted frame's
    # serialization — the frame burned link capacity before the checksum
    # discarded it.
    config = NetemConfig("c", loss=0.0, rate_bps=1e6)
    plan = FaultPlan(corrupt=1.0)
    arrivals = _run(config, plan=plan, segments=[_segment(), _ack()])
    assert len(arrivals) == 1
    assert arrivals[0][1].is_ack_only
    assert arrivals[0][0] == pytest.approx(8e-3 + 8 * 66 / 1e6, rel=1e-9)


def test_deliver_corruption_flips_exactly_one_bit():
    config = NetemConfig("c", loss=0.0, rate_bps=1e9)
    plan = FaultPlan(corrupt_nth=1, corrupt_mode=CORRUPT_DELIVER)
    original = _segment(payload_byte=b"\xaa")
    arrivals = _run(config, plan=plan, segments=[original])
    assert len(arrivals) == 1
    delivered = arrivals[0][1]
    diff_bits = sum(
        bin(a ^ b).count("1")
        for a, b in zip(original.payload, delivered.payload)
    )
    assert diff_bits == 1
    assert len(delivered.payload) == len(original.payload)


def test_corrupt_nth_counts_data_frames_only():
    # an ACK-only frame rides through first; the 1st *data* frame is still
    # the one corrupt_nth=1 selects
    config = NetemConfig("c", loss=0.0, rate_bps=1e9)
    plan = FaultPlan(corrupt_nth=1)
    arrivals = _run(config, plan=plan, segments=[_ack(), _segment(), _segment()])
    assert [seg.is_ack_only for _, seg in arrivals] == [True, False]


# -- duplication and reordering ----------------------------------------------

def test_dup_delivers_twice_but_never_recurses():
    config = NetemConfig("d", loss=0.0, rate_bps=1e6)
    plan = FaultPlan(dup=1.0)
    arrivals = _run(config, plan=plan)
    assert len(arrivals) == 2
    # the duplicate serializes separately, right behind the original
    assert arrivals[1][0] - arrivals[0][0] == pytest.approx(8e-3, rel=1e-6)


def test_reorder_holds_selected_frame_past_its_successor():
    # seed "ro-3": first reorder draw 0.011 (< 0.5, held back), second
    # 0.936 (not held) — frame B overtakes frame A
    config = NetemConfig("r", loss=0.0, rate_bps=1e12)
    plan = FaultPlan(reorder=0.5, reorder_delay=0.03)
    a = _segment(payload_byte=b"A")
    b = _segment(payload_byte=b"B")
    arrivals = _run(config, plan=plan, seed="ro-3", segments=[a, b])
    assert [seg.payload[:1] for _, seg in arrivals] == [b"B", b"A"]
    assert arrivals[1][0] - arrivals[0][0] == pytest.approx(0.03, rel=1e-6)


# -- metrics and determinism -------------------------------------------------

def test_fault_metrics_counters():
    config = NetemConfig("m", loss=0.0, rate_bps=1e9)
    plan = FaultPlan(corrupt_nth=1, dup=1.0, reorder=1.0)
    metrics = Metrics()
    arrivals = _run(config, plan=plan, metrics=metrics)
    counters = metrics.snapshot()["counters"]
    assert counters["netem.test.corrupted"] == 1
    assert counters["netem.test.duplicated"] == 1
    # the original and its duplicate each take the reorder draw
    assert counters["netem.test.reordered"] == 2
    assert "netem.test.dropped" not in counters
    assert len(arrivals) == 1  # original corrupted (checksum), dup survives


def test_fault_injection_is_seed_deterministic():
    config = NetemConfig("det", loss=0.05, rate_bps=1e8)
    plan = FaultPlan(corrupt=0.1, dup=0.1, reorder=0.1, reorder_delay=0.002)

    def run(seed):
        return [(t, seg.payload) for t, seg in _run(
            config, plan=plan, seed=seed,
            segments=[_segment(payload_byte=bytes([i])) for i in range(1, 60)])]

    assert run("seed-a") == run("seed-a")
    assert run("seed-a") != run("seed-b")


def test_inactive_plan_preserves_drbg_stream():
    """A plan with every knob off must replay bit-identically to no plan:
    plan-free links consume exactly one DRBG draw per frame (loss)."""
    config = NetemConfig("p", loss=0.3, rate_bps=1e8)
    segments = [_segment() for _ in range(40)]

    def run(plan):
        return [t for t, _ in _run(config, plan=plan, seed="stream",
                                   segments=list(segments))]

    assert run(None) == run(FaultPlan()) == run(FaultPlan(reorder_delay=9.9))


# -- transport exhaustion (typed failure instead of a raise) -----------------

def test_retransmission_exhaustion_yields_transport_outcome(monkeypatch):
    from repro.faults.outcome import KIND_TRANSPORT
    from repro.netsim import tcp
    from repro.netsim.costmodel import CostModel
    from repro.netsim.scripted import record_script, scripted_apps
    from repro.netsim.testbed import run_simulated_handshake

    monkeypatch.setattr(tcp, "MAX_RETRIES", 3)
    blackhole = NetemConfig("blackhole", loss=1.0, rate_bps=1e9)
    client, server = scripted_apps(record_script("x25519", "rsa:1024"))
    metrics = Metrics()
    trace = run_simulated_handshake(
        client, server, scenario=blackhole, netem_drbg=Drbg("exhaust"),
        cost_model=CostModel(), metrics=metrics)
    assert trace.outcome.kind == KIND_TRANSPORT
    assert "retransmission limit" in trace.outcome.detail
    assert trace.total == 0.0
    counters = metrics.snapshot()["counters"]
    assert counters["handshake.failures.transport-error"] == 1
    assert counters["tcp.client.failed"] == 1


def test_scenarios_unchanged():
    # the fault layer must not disturb the paper's scenario table
    assert SCENARIOS["lte-m"].loss == 0.10
    assert SCENARIOS["low-bandwidth"].rate_bps == 1e6
