"""Cost model: complete coverage, additivity, attributions."""

import pytest

from repro.netsim.costmodel import PROFILING_OVERHEAD, CostModel
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES
from repro.tls.actions import CryptoOp


@pytest.fixture(scope="module")
def model():
    return CostModel()


@pytest.mark.parametrize("kem", ALL_KEM_NAMES)
@pytest.mark.parametrize("op", ["kem_keygen", "kem_encaps", "kem_decaps"])
def test_every_kem_has_costs(model, kem, op):
    cost = model.op_cost(CryptoOp(op, kem), "client")
    assert cost.ms > 0
    assert cost.library in ("libcrypto", "libssl")


@pytest.mark.parametrize("sig", ALL_SIG_NAMES)
@pytest.mark.parametrize("op", ["sig_sign", "sig_verify", "cert_verify"])
def test_every_sig_has_costs(model, sig, op):
    cost = model.op_cost(CryptoOp(op, sig), "server")
    assert cost.ms > 0
    assert cost.library == "libcrypto"


def test_hybrid_costs_are_component_sums(model):
    hybrid = model.op_cost(CryptoOp("kem_encaps", "p256_kyber512"), "server").ms
    p256 = model.op_cost(CryptoOp("kem_encaps", "p256"), "server").ms
    kyber = model.op_cost(CryptoOp("kem_encaps", "kyber512"), "server").ms
    assert hybrid == pytest.approx(p256 + kyber)


def test_composite_sig_costs_are_component_sums(model):
    combo = model.op_cost(CryptoOp("sig_sign", "p521_dilithium5"), "server").ms
    d5 = model.op_cost(CryptoOp("sig_sign", "dilithium5"), "server").ms
    assert combo > d5  # ECDSA P-521 share included


def test_bike_client_attribution_is_libssl(model):
    client = model.op_cost(CryptoOp("kem_decaps", "bikel1"), "client")
    server = model.op_cost(CryptoOp("kem_encaps", "bikel1"), "server")
    assert client.library == "libssl"      # the paper's Table 3 quirk
    assert server.library == "libcrypto"
    hybrid_client = model.op_cost(CryptoOp("kem_decaps", "p256_bikel1"), "client")
    assert hybrid_client.library == "libssl"


def test_size_proportional_generic_ops(model):
    small = model.op_cost(CryptoOp("tls_frame", size=100), "client").ms
    large = model.op_cost(CryptoOp("tls_frame", size=100_000), "client").ms
    assert large > small
    assert model.op_cost(CryptoOp("tls_frame", size=0), "client").library == "libssl"
    assert model.op_cost(CryptoOp("record_crypt", size=0), "client").library == "libcrypto"


def test_unknown_op_rejected(model):
    with pytest.raises(KeyError):
        model.op_cost(CryptoOp("quantum_teleport"), "client")


def test_packet_and_tooling_costs(model):
    packet_costs = model.packet_cost()
    assert {c.library for c in packet_costs} == {"kernel", "ixgbe"}
    assert model.tooling_cost().library == "python"


def test_profiling_overhead_scales_everything():
    plain = CostModel(profiling=False)
    prof = CostModel(profiling=True)
    op = CryptoOp("sig_sign", "rsa:2048")
    assert prof.op_cost(op, "server").ms == pytest.approx(
        plain.op_cost(op, "server").ms * PROFILING_OVERHEAD)


def test_paper_anchors(model):
    """Spot-check the calibration anchors documented in DESIGN.md."""
    assert model.op_cost(CryptoOp("sig_sign", "rsa:2048"), "server").ms == pytest.approx(1.15)
    assert model.op_cost(CryptoOp("kem_encaps", "p521"), "server").ms == pytest.approx(6.8)
    assert model.op_cost(CryptoOp("sig_sign", "sphincs128"), "server").ms == pytest.approx(13.5)
    assert model.op_cost(CryptoOp("kem_decaps", "bikel1"), "client").ms == pytest.approx(2.1)
    # relative orderings the paper's conclusions rest on
    sign = lambda name: model.op_cost(CryptoOp("sig_sign", name), "server").ms
    assert sign("falcon512") < sign("rsa:2048") < sign("rsa:3072")
    assert sign("dilithium2") < sign("rsa:2048")
    assert sign("sphincs128") > 10 * sign("rsa:2048")
    enc = lambda name: model.op_cost(CryptoOp("kem_encaps", name), "server").ms
    assert enc("kyber512") < enc("x25519") < enc("p384") < enc("p521")
