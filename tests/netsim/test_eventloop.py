"""Discrete-event scheduler semantics."""

import pytest

from repro.netsim.eventloop import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(0.3, lambda: fired.append("c"))
    loop.schedule(0.1, lambda: fired.append("a"))
    loop.schedule(0.2, lambda: fired.append("b"))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_schedule_order():
    loop = EventLoop()
    fired = []
    for name in "abc":
        loop.schedule(0.5, lambda n=name: fired.append(n))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_now_advances_monotonically():
    loop = EventLoop()
    times = []
    loop.schedule(0.1, lambda: times.append(loop.now))
    loop.schedule(0.4, lambda: times.append(loop.now))
    loop.run()
    assert times == [pytest.approx(0.1), pytest.approx(0.4)]


def test_nested_scheduling():
    loop = EventLoop()
    fired = []

    def outer():
        fired.append(("outer", loop.now))
        loop.schedule(0.5, lambda: fired.append(("inner", loop.now)))

    loop.schedule(1.0, outer)
    loop.run()
    assert fired[0][0] == "outer"
    assert fired[1] == ("inner", pytest.approx(1.5))


def test_run_until_leaves_future_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(3.0, lambda: fired.append(3))
    loop.run(until=2.0)
    assert fired == [1]
    assert not loop.idle()
    loop.run()
    assert fired == [1, 3]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        EventLoop().schedule(-0.1, lambda: None)


def test_runaway_guard():
    loop = EventLoop()

    def recur():
        loop.schedule(0.0, recur)

    loop.schedule(0.0, recur)
    with pytest.raises(RuntimeError, match="runaway"):
        loop.run(max_events=1000)
