"""Key-schedule trace vectors from RFC 8448 §3 ("Simple 1-RTT Handshake").

These pin every secret of the SHA-256 schedule — handshake, application,
exporter, and resumption masters plus the finished keys — against the
published trace, so any HKDF labelling or extraction bug fails loudly
rather than producing a self-consistent-but-wrong schedule.
"""

from repro.tls.keyschedule import (
    HASH_LEN,
    KeySchedule,
    derive_secret,
    hkdf_expand_label,
)

# inputs from the RFC 8448 §3 trace
SHARED_SECRET = bytes.fromhex(
    "8bd4054fb55b9d63fdfbacf9f04b9f0d35e6d63f537563efd46272900f89492d"
)
HASH_CH_SH = bytes.fromhex(
    "860c06edc07858ee8e78f0e7428c58edd6b43f2ca3e6e95f02ed063cf0e1cad8"
)
HASH_CH_CV = bytes.fromhex(
    "edb7725fa7a3473b031ec8ef65a2485493900138a2b91291407d7951a06110ed"
)
HASH_CH_SFIN = bytes.fromhex(
    "9608102a0f1ccc6db6250b7b7e417b1a000eaada3daae4777a7686c9ff83df13"
)
HASH_CH_CFIN = bytes.fromhex(
    "209145a96ee8e2a122ff810047cc952684658d6049e86429426db87c54ad143d"
)


def _schedule() -> KeySchedule:
    schedule = KeySchedule()
    schedule.set_shared_secret(SHARED_SECRET, HASH_CH_SH)
    schedule.derive_master(HASH_CH_SFIN)
    schedule.derive_resumption(HASH_CH_CFIN)
    return schedule


def test_early_secret():
    schedule = KeySchedule()
    assert schedule._early_secret == bytes.fromhex(
        "33ad0a1c607ec03b09e6cd9893680ce210adf300aa1f2660e1b22e10f170f92a"
    )


def test_handshake_secret_and_traffic_secrets():
    schedule = _schedule()
    assert schedule.handshake_secret == bytes.fromhex(
        "1dc826e93606aa6fdc0aadc12f741b01046aa6b99f691ed221a9f0ca043fbeac"
    )
    assert schedule.client_hs_secret == bytes.fromhex(
        "b3eddb126e067f35a780b3abf45e2d8f3b1a950738f52e9600746a0e27a55a21"
    )
    assert schedule.server_hs_secret == bytes.fromhex(
        "b67b7d690cc16c4e75e54213cb2d37b4e9c912bcded9105d42befd59d391ad38"
    )


def test_master_and_application_secrets():
    schedule = _schedule()
    assert schedule.master_secret == bytes.fromhex(
        "18df06843d13a08bf2a449844c5f8a478001bc4d4c627984d5a41da8d0402919"
    )
    assert schedule.client_app_secret == bytes.fromhex(
        "9e40646ce79a7f9dc05af8889bce6552875afa0b06df0087f792ebb7c17504a5"
    )
    assert schedule.server_app_secret == bytes.fromhex(
        "a11af9f05531f856ad47116b45a950328204b4f44bfb6b3a4b4f1f3fcb631643"
    )


def test_exporter_and_resumption_masters():
    schedule = _schedule()
    assert schedule.exporter_master_secret == bytes.fromhex(
        "fe22f881176eda18eb8f44529e6792c50c9a3f89452f68d8ae311b4309d3cf50"
    )
    assert schedule.resumption_master_secret == bytes.fromhex(
        "7df235f2031d2a051287d02b0241b0bfdaf86cc856231f2d5aba46c434ec196c"
    )


def test_server_finished_key_and_verify_data():
    schedule = _schedule()
    finished_key = hkdf_expand_label(
        schedule.server_hs_secret, "finished", b"", HASH_LEN
    )
    assert finished_key == bytes.fromhex(
        "008d3b66f816ea559f96b537e885c31fc068bf492c652f01f288a1d8cdc19fc8"
    )
    verify_data = KeySchedule.finished_verify_data(
        schedule.server_hs_secret, HASH_CH_CV
    )
    assert verify_data == bytes.fromhex(
        "9b9b141d906337fbd2cbdce71df4deda4ab42c309572cb7fffee5454b78f0718"
    )


def test_resumption_psk_for_ticket_nonce():
    schedule = _schedule()
    psk = KeySchedule.ticket_psk(schedule.resumption_master_secret, b"\x00\x00")
    assert psk == bytes.fromhex(
        "4ecd0eb6ec3b4d87f5d6028f922ca4c5851a277fd41311c9e62d2c9492e1c4f3"
    )


def test_derived_intermediates():
    schedule = KeySchedule()
    empty_hash = KeySchedule._empty_hash()
    derived = derive_secret(schedule._early_secret, "derived", empty_hash)
    assert derived == bytes.fromhex(
        "6f2615a108c702c5678f54fc9dbab69716c076189c48250cebeac3576c3611ba"
    )
    full = _schedule()
    derived_master = derive_secret(full.handshake_secret, "derived", empty_hash)
    assert derived_master == bytes.fromhex(
        "43de77e0c77713859a944db9db2590b53190a65b3ee2e4f12dd7a0bb7ce254b4"
    )
