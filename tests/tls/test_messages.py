"""Handshake message codecs."""

import pytest

from repro.tls import messages as msg
from repro.tls.errors import DecodeError
from repro.tls.groups import group_id, sigscheme_id


def _hello(**overrides):
    fields = dict(
        random=b"\x01" * 32,
        session_id=b"\x02" * 32,
        group_name_to_share={},
        group_ids=[group_id("x25519"), group_id("kyber512")],
        key_shares=[(group_id("x25519"), b"\x03" * 32)],
        sig_scheme_ids=[sigscheme_id("rsa:2048")],
        server_name="server.repro.test",
    )
    fields.update(overrides)
    return msg.ClientHello(**fields)


def test_client_hello_roundtrip():
    hello = _hello()
    wire = hello.encode()
    assert wire[0] == msg.HT_CLIENT_HELLO
    decoded = msg.ClientHello.decode(wire[4:])
    assert decoded.random == hello.random
    assert decoded.session_id == hello.session_id
    assert decoded.group_ids == hello.group_ids
    assert decoded.key_shares == hello.key_shares
    assert decoded.sig_scheme_ids == hello.sig_scheme_ids
    assert decoded.server_name == hello.server_name


def test_client_hello_without_sni():
    decoded = msg.ClientHello.decode(_hello(server_name=None).encode()[4:])
    assert decoded.server_name is None


def test_client_hello_multiple_key_shares():
    shares = [(group_id("x25519"), b"\x03" * 32), (group_id("kyber512"), b"\x04" * 800)]
    decoded = msg.ClientHello.decode(_hello(key_shares=shares).encode()[4:])
    assert decoded.key_shares == shares


def test_client_hello_truncated_rejected():
    wire = _hello().encode()
    with pytest.raises(DecodeError):
        msg.ClientHello.decode(wire[4:40])


def test_server_hello_roundtrip():
    hello = msg.ServerHello(
        random=b"\x05" * 32,
        session_id=b"\x06" * 32,
        group_id=group_id("kyber512"),
        key_share=b"\x07" * 768,
    )
    wire = hello.encode()
    assert wire[0] == msg.HT_SERVER_HELLO
    decoded = msg.ServerHello.decode(wire[4:])
    assert decoded.random == hello.random
    assert decoded.group_id == hello.group_id
    assert decoded.key_share == hello.key_share


def test_handshake_stream_iteration():
    wire = _hello().encode() + msg.encode_finished(b"\x0A" * 32)
    messages, rest = msg.iter_handshake_messages(wire)
    assert rest == b""
    assert [m[0] for m in messages] == [msg.HT_CLIENT_HELLO, msg.HT_FINISHED]


def test_handshake_stream_partial_message_buffered():
    wire = _hello().encode()
    messages, rest = msg.iter_handshake_messages(wire[:-5])
    assert messages == [] and rest == wire[:-5]


def test_certificate_message_roundtrip():
    blobs = [b"cert-one" * 10, b"cert-two" * 500]
    wire = msg.encode_certificate(blobs)
    messages, _ = msg.iter_handshake_messages(wire)
    assert messages[0][0] == msg.HT_CERTIFICATE
    assert msg.decode_certificate(messages[0][1]) == blobs


def test_certificate_verify_roundtrip():
    wire = msg.encode_certificate_verify(0x0804, b"\x0B" * 256)
    messages, _ = msg.iter_handshake_messages(wire)
    scheme, sig = msg.decode_certificate_verify(messages[0][1])
    assert scheme == 0x0804 and sig == b"\x0B" * 256


def test_cv_context_string_shape():
    ctx = msg.CERTIFICATE_VERIFY_SERVER_CONTEXT
    assert ctx.startswith(b"\x20" * 64)
    assert b"TLS 1.3, server CertificateVerify" in ctx
    assert ctx.endswith(b"\x00")


def test_client_hello_requires_supported_suite():
    wire = bytearray(_hello().encode()[4:])
    # cipher suite 0x1301 sits right after 2 + 32 + 1 + 32 + 2 bytes
    offset = 2 + 32 + 1 + 32 + 2
    wire[offset:offset + 2] = (0x1302).to_bytes(2, "big")
    with pytest.raises(DecodeError):
        msg.ClientHello.decode(bytes(wire))


def test_group_and_scheme_codepoints():
    assert group_id("x25519") == 0x001D
    assert group_id("p256") == 0x0017
    assert group_id("kyber512") >= 0x2F00          # OQS private range
    assert sigscheme_id("rsa:2048") == 0x0805
    assert sigscheme_id("dilithium2") >= 0xFE00
    with pytest.raises(KeyError):
        group_id("not-a-group")
    with pytest.raises(KeyError):
        sigscheme_id("not-a-scheme")
