"""TLS 1.3 key schedule: HKDF-Expand-Label and secret derivation."""

import pytest

from repro.tls.errors import HandshakeFailure
from repro.tls.keyschedule import (
    KeySchedule,
    derive_secret,
    hkdf_expand_label,
    traffic_keys,
)


def test_expand_label_rfc8446_client_hs_traffic_shape():
    # structure check: info = length(2) || len(label)(1) || "tls13 "+label || len(ctx)(1) || ctx
    secret = b"\x01" * 32
    out16 = hkdf_expand_label(secret, "key", b"", 16)
    out12 = hkdf_expand_label(secret, "iv", b"", 12)
    assert len(out16) == 16 and len(out12) == 12
    assert out16 != out12


def test_expand_label_distinct_labels_and_contexts():
    secret = b"\x02" * 32
    assert hkdf_expand_label(secret, "a", b"", 32) != hkdf_expand_label(secret, "b", b"", 32)
    assert hkdf_expand_label(secret, "a", b"x", 32) != hkdf_expand_label(secret, "a", b"y", 32)


def test_derive_secret_length():
    assert len(derive_secret(b"\x00" * 32, "derived", b"\x11" * 32)) == 32


def test_traffic_keys_shape():
    keys = traffic_keys(b"\x03" * 32)
    assert len(keys.key) == 16
    assert len(keys.iv) == 12


def test_schedule_symmetry_between_peers():
    """Two independent KeySchedule objects fed the same inputs agree."""
    a, b = KeySchedule(), KeySchedule()
    shared, th1, th2 = b"\xAA" * 32, b"\x01" * 32, b"\x02" * 32
    a.set_shared_secret(shared, th1)
    b.set_shared_secret(shared, th1)
    assert a.client_hs_secret == b.client_hs_secret
    assert a.server_hs_secret == b.server_hs_secret
    assert a.client_hs_secret != a.server_hs_secret
    a.derive_master(th2)
    b.derive_master(th2)
    assert a.client_app_secret == b.client_app_secret
    assert a.server_app_secret == b.server_app_secret


def test_different_shared_secret_diverges():
    a, b = KeySchedule(), KeySchedule()
    th = b"\x01" * 32
    a.set_shared_secret(b"\xAA" * 32, th)
    b.set_shared_secret(b"\xAB" * 32, th)
    assert a.client_hs_secret != b.client_hs_secret


def test_transcript_binds_secrets():
    a, b = KeySchedule(), KeySchedule()
    a.set_shared_secret(b"\xAA" * 32, b"\x01" * 32)
    b.set_shared_secret(b"\xAA" * 32, b"\x02" * 32)
    assert a.server_hs_secret != b.server_hs_secret


def test_variable_length_shared_secrets_accepted():
    """Hybrid KEMs produce 64- or 96-byte shared secrets."""
    schedule = KeySchedule()
    schedule.set_shared_secret(b"\x55" * 96, b"\x00" * 32)
    assert schedule.handshake_secret is not None


def test_derive_master_requires_handshake_secret():
    with pytest.raises(HandshakeFailure):
        KeySchedule().derive_master(b"\x00" * 32)


def test_finished_verify_data_deterministic():
    vd1 = KeySchedule.finished_verify_data(b"\x01" * 32, b"\x02" * 32)
    vd2 = KeySchedule.finished_verify_data(b"\x01" * 32, b"\x02" * 32)
    vd3 = KeySchedule.finished_verify_data(b"\x01" * 32, b"\x03" * 32)
    assert vd1 == vd2 != vd3
    assert len(vd1) == 32
