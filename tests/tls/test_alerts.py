"""Alert records on the wire, terminal abort semantics, fault-driven alerts."""

import pytest

from repro.crypto.drbg import Drbg
from repro.tls.actions import Send
from repro.tls.certs import make_server_credentials
from repro.tls.client import TlsClient
from repro.tls.errors import (
    ALERT_BAD_RECORD_MAC,
    ALERT_DECODE_ERROR,
    ALERT_HANDSHAKE_FAILURE,
    DecodeError,
    PeerAlert,
    alert_name,
)
from repro.tls.records import (
    ALERT_LEVEL_FATAL,
    CONTENT_ALERT,
    CONTENT_HANDSHAKE,
    decode_alert,
    decode_records,
    encode_alert,
)
from repro.tls.server import TlsServer


# -- wire format -------------------------------------------------------------

def test_alert_record_encode_shape():
    record = encode_alert(ALERT_HANDSHAKE_FAILURE)
    assert record.content_type == CONTENT_ALERT
    assert record.payload == bytes((ALERT_LEVEL_FATAL, ALERT_HANDSHAKE_FAILURE))
    wire = record.encode()
    assert wire[0] == 21 and wire[-2:] == bytes((2, 40))


@pytest.mark.parametrize("code", [ALERT_BAD_RECORD_MAC, ALERT_DECODE_ERROR,
                                  ALERT_HANDSHAKE_FAILURE])
def test_alert_encode_decode_roundtrip(code):
    level, description = decode_alert(encode_alert(code).payload)
    assert (level, description) == (ALERT_LEVEL_FATAL, code)


def test_decode_alert_rejects_wrong_length():
    with pytest.raises(DecodeError, match="2 bytes"):
        decode_alert(b"\x02")
    with pytest.raises(DecodeError):
        decode_alert(b"\x02\x28\x00")


def test_alert_name_known_and_unknown():
    assert alert_name(ALERT_BAD_RECORD_MAC) == "bad_record_mac"
    assert alert_name(123) == "alert_123"


# -- abort flow: one alert out, terminal state, no echo ----------------------

def _mismatched_pair(seed="alert-flow"):
    drbg = Drbg(seed)
    cert, sk, store = make_server_credentials("rsa:1024", drbg.fork("ca"))
    client = TlsClient("x25519", "rsa:1024", store, drbg.fork("c"))
    server = TlsServer("kyber512", "rsa:1024", cert, sk, drbg.fork("s"))
    return client, server


def test_failing_endpoint_puts_alert_record_on_the_wire():
    client, server = _mismatched_pair()
    hello = b"".join(a.data for a in client.start() if isinstance(a, Send))
    sends = [a for a in server.receive(hello) if isinstance(a, Send)]
    assert len(sends) == 1
    records, rest = decode_records(sends[0].data)
    assert rest == b"" and len(records) == 1
    assert records[0].content_type == CONTENT_ALERT
    assert decode_alert(records[0].payload) == (ALERT_LEVEL_FATAL,
                                                ALERT_HANDSHAKE_FAILURE)
    # accounting includes the failed path's bytes
    assert server.bytes_out == len(sends[0].data)


def test_alert_receiver_closes_without_echo():
    client, server = _mismatched_pair(seed="alert-echo")
    hello = b"".join(a.data for a in client.start() if isinstance(a, Send))
    alert_wire = b"".join(a.data for a in server.receive(hello)
                          if isinstance(a, Send))
    actions = client.receive(alert_wire)
    assert actions == []           # no echo, no further flights
    assert client.failed and isinstance(client.failure, PeerAlert)
    assert client.alert_received == ALERT_HANDSHAKE_FAILURE
    assert client.alert_sent is None


def test_failed_endpoints_ignore_all_further_bytes():
    client, server = _mismatched_pair(seed="alert-terminal")
    hello = b"".join(a.data for a in client.start() if isinstance(a, Send))
    server.receive(hello)
    assert server.failed
    for junk in (hello, b"\x16\x03\x03\x00\x01\x00", b"garbage"):
        assert server.receive(junk) == []
    assert server.alert_sent == ALERT_HANDSHAKE_FAILURE  # unchanged


def test_malformed_garbage_aborts_with_decode_error():
    drbg = Drbg("garbage")
    cert, sk, store = make_server_credentials("rsa:1024", drbg.fork("ca"))
    server = TlsServer("x25519", "rsa:1024", cert, sk, drbg.fork("s"))
    # a plausible record header with a nonsense handshake body
    body = bytes([99, 0, 0, 2, 1]) + b"\xff"
    wire = bytes([CONTENT_HANDSHAKE, 3, 3]) + len(body).to_bytes(2, "big") + body
    sends = [a for a in server.receive(wire) if isinstance(a, Send)]
    assert server.failed
    assert server.alert_sent is not None
    assert sends and "Alert" in sends[-1].label


# -- fragmented client Finished (reassembly across record boundaries) --------

def test_client_finished_split_across_records(monkeypatch):
    """RFC 8446 §5.1: a handshake message may span records. The server must
    reassemble a client Finished whose bytes arrive in two TLS records."""
    from repro.tls import client as client_module

    def split_in_two(protection, payload):
        mid = len(payload) // 2
        return [protection.encrypt(CONTENT_HANDSHAKE, payload[:mid]),
                protection.encrypt(CONTENT_HANDSHAKE, payload[mid:])]

    monkeypatch.setattr(client_module, "encrypt_handshake_stream", split_in_two)
    drbg = Drbg("split-fin")
    cert, sk, store = make_server_credentials("rsa:1024", drbg.fork("ca"))
    client = TlsClient("x25519", "rsa:1024", store, drbg.fork("c"))
    server = TlsServer("x25519", "rsa:1024", cert, sk, drbg.fork("s"))
    hello = b"".join(a.data for a in client.start() if isinstance(a, Send))
    flight = b"".join(a.data for a in server.receive(hello)
                      if isinstance(a, Send))
    fin = b"".join(a.data for a in client.receive(flight)
                   if isinstance(a, Send))
    # deliver the two Finished records one at a time, as TCP might
    records, rest = decode_records(fin)
    assert rest == b"" and len(records) >= 3  # CCS + two Finished fragments
    for record in records:
        server.receive(record.encode())
    assert server.handshake_complete and not server.failed
    assert client.application_secrets == server.application_secrets


# -- fault-driven alerts end to end (deliver-mode corruption) ----------------

def test_deliver_corruption_provokes_bad_record_mac_alert():
    from repro.faults.plan import CORRUPT_DELIVER, FaultPlan
    from repro.netsim.testbed import Testbed
    from repro.obs.metrics import Metrics

    creds = make_server_credentials("rsa:1024", Drbg("golden-creds"))
    bed = Testbed("x25519", "rsa:1024", *creds)
    metrics = Metrics()
    plan = FaultPlan(corrupt_nth=2, corrupt_mode=CORRUPT_DELIVER)
    trace = bed.run_handshake(plan=plan, metrics=metrics)
    assert not trace.outcome.ok
    assert trace.outcome.key == "alert.bad_record_mac"
    assert trace.outcome.alert == ALERT_BAD_RECORD_MAC
    assert trace.total == 0.0  # no phase timings on a failed run
    counters = metrics.snapshot()["counters"]
    assert counters["handshake.failures.alert.bad_record_mac"] == 1
    assert counters["netem.s2c.corrupted"] == 1


def test_deliver_corruption_of_plaintext_hello_decode_error():
    from repro.faults.plan import CORRUPT_DELIVER, FaultPlan
    from repro.netsim.testbed import Testbed

    creds = make_server_credentials("rsa:1024", Drbg("golden-creds"))
    bed = Testbed("x25519", "rsa:1024", *creds)
    plan = FaultPlan(corrupt_nth=1, corrupt_mode=CORRUPT_DELIVER)
    trace = bed.run_handshake(plan=plan)
    assert not trace.outcome.ok
    assert trace.outcome.key == "alert.decode_error"
