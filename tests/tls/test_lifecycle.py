"""Session-lifecycle handshakes: PSK resumption, HRR, mTLS, tickets.

These are the protocol-level goldens for the scenario subsystem: a
resumed handshake must skip the certificate chain entirely (its server
flight shrinks by exactly the Certificate + CertificateVerify wire
bytes), mutual TLS must add the client chain, and HelloRetryRequest must
complete in two round trips with the synthetic-message transcript.
"""

import pytest

from repro.crypto.drbg import Drbg
from repro.tls.actions import Send
from repro.tls.certs import (
    make_chain_credentials,
    make_client_credentials,
    make_server_credentials,
)
from repro.tls.client import TlsClient
from repro.tls.errors import CertificateRequired, HandshakeFailure
from repro.tls.server import TlsServer
from repro.tls.session import establish_channels
from repro.tls.ticket import ServerSessionStore, SessionCache

KEM = "kyber512"
SIG = "dilithium2"


def _sends(actions) -> bytes:
    return b"".join(a.data for a in actions if isinstance(a, Send))


def pump(client, server, rounds: int = 6):
    """Lockstep a sans-io client/server pair until quiescent.

    Returns the concatenated (client wire, server wire) byte streams.
    """
    to_server = _sends(client.start())
    to_client = b""
    client_wire, server_wire = to_server, b""
    for _ in range(rounds):
        if to_server:
            to_client = _sends(server.receive(to_server))
            server_wire += to_client
            to_server = b""
        if to_client:
            to_server = _sends(client.receive(to_client))
            client_wire += to_server
            to_client = b""
        if not to_server and not to_client:
            break
    assert not client.failed, client.failure
    assert not server.failed, server.failure
    return client_wire, server_wire


@pytest.fixture(scope="module")
def credentials():
    drbg = Drbg("lifecycle-test")
    cert, sk, store = make_server_credentials(SIG, drbg.fork("ca"))
    return cert, sk, store


def _mint_ticket(credentials, label="mint"):
    """Run a full handshake that issues one ticket; returns (cache, store)."""
    cert, sk, trust = credentials
    drbg = Drbg(f"lifecycle-{label}")
    session_store = ServerSessionStore()
    session_cache = SessionCache()
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"),
                       session_cache=session_cache)
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"),
                       session_store=session_store, issue_tickets=1)
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete
    return client, server, session_cache, session_store


def test_ticket_minting_and_cache(credentials):
    client, server, cache, store = _mint_ticket(credentials)
    assert len(cache) == 1 and len(store) == 1
    ticket = cache.peek("server.repro.test")
    assert ticket.kem == KEM and ticket.sig == SIG
    assert len(ticket.psk) == 32
    # both sides derived the same PSK without it touching the wire
    state = store.redeem(ticket.identity)
    assert state.psk == ticket.psk


def test_resumption_skips_certificate_chain(credentials):
    cert, sk, trust = credentials
    _c, _s, cache, store = _mint_ticket(credentials, label="resume")
    ticket = cache.take("server.repro.test")
    drbg = Drbg("lifecycle-resumed")
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"), ticket=ticket)
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"), session_store=store)
    resume_c2s, resume_s2c = pump(client, server)
    assert client.handshake_complete and server.handshake_complete
    assert client.resumed and server.resumed
    assert len(store) == 0  # ticket is single-use

    # the resumed server flight must shrink by *exactly* the Certificate
    # and CertificateVerify contribution of the full flight: their message
    # payloads, the record framing of the CV record they no longer need,
    # minus the ServerHello's pre_shared_key selection extension
    drbg = Drbg("lifecycle-full-twin")
    full_client = TlsClient(KEM, SIG, trust, drbg.fork("c"))
    full_server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"))
    full_c2s, full_s2c = pump(full_client, full_server)
    import repro.tls.messages as msg
    from repro.pqc.registry import get_sig
    from repro.tls.records import decode_records
    from repro.tls.scenarios import (
        CLIENT_HELLO_RESUME_DELTA,
        ENCRYPTED_RECORD_OVERHEAD,
        SERVER_HELLO_RESUME_DELTA,
    )

    cert_msg = len(msg.encode_certificate([cert.encode()]))  # framed message
    cv_msg = len(msg.encode_certificate_verify(
        0, bytes(get_sig(SIG).signature_bytes)))
    full_records, _ = decode_records(full_s2c)
    resume_records, _ = decode_records(resume_s2c)
    # the Certificate rides in the EE record, the CV gets its own record:
    # one fewer encrypted record on the resumed flight
    assert len(full_records) - len(resume_records) == 1
    delta = len(full_s2c) - len(resume_s2c)
    assert delta == (cert_msg + cv_msg + ENCRYPTED_RECORD_OVERHEAD
                     - SERVER_HELLO_RESUME_DELTA)
    # and the resumed ClientHello grows by exactly the PSK extensions
    assert len(resume_c2s) - len(full_c2s) == CLIENT_HELLO_RESUME_DELTA

    # resumed channels still interoperate
    cchan, schan = establish_channels(client, server)
    assert schan.receive(cchan.send(b"resumed!")) == b"resumed!"


def test_unknown_ticket_falls_back_to_full_handshake(credentials):
    cert, sk, trust = credentials
    _c, _s, cache, _store = _mint_ticket(credentials, label="fallback")
    ticket = cache.take("server.repro.test")
    drbg = Drbg("lifecycle-fallback2")
    # fresh store: the server has never seen this ticket
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"), ticket=ticket)
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"),
                       session_store=ServerSessionStore())
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete
    assert not client.resumed and not server.resumed


def test_tampered_binder_aborts(credentials):
    cert, sk, trust = credentials
    _c, _s, cache, store = _mint_ticket(credentials, label="binder")
    good = cache.take("server.repro.test")
    bad = type(good)(identity=good.identity, psk=bytes(32), kem=good.kem,
                     sig=good.sig, age_add=good.age_add, lifetime=good.lifetime)
    drbg = Drbg("lifecycle-binder2")
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"), ticket=bad)
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"), session_store=store)
    to_server = _sends(client.start())
    server.receive(to_server)
    assert server.failed
    assert isinstance(server.failure, HandshakeFailure)


def test_hello_retry_request_completes(credentials):
    cert, sk, trust = credentials
    drbg = Drbg("lifecycle-hrr")
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"), offer_share=False)
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"))
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete
    assert client._retried and server._retry_sent
    # both transcripts agreed (Finished verified) and channels work
    cchan, schan = establish_channels(client, server)
    assert cchan.receive(schan.send(b"after retry")) == b"after retry"


def test_second_hello_without_share_fails(credentials):
    cert, sk, trust = credentials
    drbg = Drbg("lifecycle-hrr-bad")
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"), offer_share=False)
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"))
    ch1 = _sends(client.start())
    hrr = _sends(server.receive(ch1))
    assert not server.failed
    # replay CH1 (still no share) instead of the updated CH2
    server._hs_stream = b""
    server.receive(ch1)
    assert server.failed


def test_mutual_tls(credentials):
    cert, sk, trust = credentials
    drbg = Drbg("lifecycle-mtls")
    client_chain, client_sk, client_trust = make_client_credentials(
        SIG, drbg.fork("client-ca"))
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"),
                       credentials=(client_chain, client_sk))
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"),
                       client_auth=client_trust)
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete
    assert server._client_cert is not None
    assert server._client_cert.subject == "client.repro.test"

    # client bytes grow by at least its certificate chain vs a plain run
    drbg = Drbg("lifecycle-mtls-twin")
    plain_client = TlsClient(KEM, SIG, trust, drbg.fork("c"))
    plain_server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"))
    pump(plain_client, plain_server)
    chain_bytes = sum(len(c.encode()) for c in client_chain)
    assert client.bytes_out - plain_client.bytes_out > chain_bytes

    cchan, schan = establish_channels(client, server)
    assert schan.receive(cchan.send(b"mutually authed")) == b"mutually authed"


def test_mtls_without_client_credentials_fails(credentials):
    cert, sk, trust = credentials
    drbg = Drbg("lifecycle-mtls-anon")
    _chain, _sk, client_trust = make_client_credentials(
        SIG, drbg.fork("client-ca"))
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"))  # no credentials
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"),
                       client_auth=client_trust)
    to_server = _sends(client.start())
    to_client = _sends(server.receive(to_server))
    to_server = _sends(client.receive(to_client))
    server.receive(to_server)
    assert server.failed
    assert isinstance(server.failure, CertificateRequired)


def test_intermediate_chain_verifies():
    drbg = Drbg("lifecycle-chain")
    chain, sk, store = make_chain_credentials(SIG, drbg.fork("pki"),
                                              chain="intermediate")
    assert len(chain) == 2
    client = TlsClient(KEM, SIG, store, drbg.fork("c"))
    server = TlsServer(KEM, SIG, chain, sk, drbg.fork("s"))
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete


def test_suppressed_chain_is_leaf_only_on_wire():
    drbg = Drbg("lifecycle-suppress")
    chain, sk, store = make_chain_credentials(SIG, drbg.fork("pki"),
                                              chain="suppressed")
    assert len(chain) == 1
    assert chain[0].issuer in store.cached
    client = TlsClient(KEM, SIG, store, drbg.fork("c"))
    server = TlsServer(KEM, SIG, chain, sk, drbg.fork("s"))
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete

    # the long twin carries the intermediate on the wire and costs more
    drbg = Drbg("lifecycle-suppress-twin")
    lchain, lsk, lstore = make_chain_credentials(SIG, drbg.fork("pki"),
                                                 chain="intermediate")
    lclient = TlsClient(KEM, SIG, lstore, drbg.fork("c"))
    lserver = TlsServer(KEM, SIG, lchain, lsk, drbg.fork("s"))
    pump(lclient, lserver)
    assert lserver.bytes_out > server.bytes_out


def test_resumed_handshake_can_mint_fresh_tickets(credentials):
    """Ticket reissue on resumption keeps the session chain alive."""
    cert, sk, trust = credentials
    _c, _s, cache, store = _mint_ticket(credentials, label="chain2")
    ticket = cache.take("server.repro.test")
    drbg = Drbg("lifecycle-chain2-resume")
    fresh_cache = SessionCache()
    client = TlsClient(KEM, SIG, trust, drbg.fork("c"), ticket=ticket,
                       session_cache=fresh_cache)
    server = TlsServer(KEM, SIG, cert, sk, drbg.fork("s"),
                       session_store=store, issue_tickets=1)
    pump(client, server)
    assert client.resumed and server.resumed
    assert len(fresh_cache) == 1  # a new ticket for the next connection
