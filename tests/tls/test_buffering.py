"""OpenSSL message-buffering policies: the paper's §4 'optimized' patch."""

import pytest

from repro.crypto.drbg import Drbg
from repro.tls.actions import Send
from repro.tls.certs import make_server_credentials
from repro.tls.client import TlsClient
from repro.tls.server import BufferPolicy, TlsServer, _BUFFER_LIMIT


def server_flights(kem, sig, policy):
    drbg = Drbg(f"bufpol:{kem}:{sig}")
    cert, sk, store = make_server_credentials(sig, drbg.fork("ca"))
    client = TlsClient(kem, sig, store, drbg.fork("c"))
    server = TlsServer(kem, sig, cert, sk, drbg.fork("s"), policy=policy)
    wire = b"".join(a.data for a in client.start() if isinstance(a, Send))
    sends = [a for a in server.receive(wire) if isinstance(a, Send)]
    return [(s.label, len(s.data)) for s in sends]


def test_optimized_pushes_sh_then_cert_then_rest():
    flights = server_flights("x25519", "rsa:1024", BufferPolicy.OPTIMIZED)
    labels = [label for label, _ in flights]
    assert labels == ["SH", "EE+Cert", "CV+Fin"]


def test_default_small_handshake_single_flight():
    """rsa:1024's whole flight fits the 4096 B buffer: one TCP push."""
    flights = server_flights("x25519", "rsa:1024", BufferPolicy.DEFAULT)
    assert len(flights) == 1
    assert flights[0][0] == "SH+EE+Cert+CV+Fin"
    assert flights[0][1] < _BUFFER_LIMIT


def test_default_large_certificate_causes_early_push():
    """Dilithium-5's certificate overflows the buffer, flushing the SH
    early — exactly the inconsistency the paper describes in §4."""
    flights = server_flights("x25519", "dilithium5", BufferPolicy.DEFAULT)
    labels = [label for label, _ in flights]
    assert labels[0] == "SH"              # pushed out by the overflowing cert
    assert any("Cert" in label for label in labels)
    assert len(flights) >= 3


def test_default_medium_flight_two_pushes():
    """falcon512 (~3 KB flight) exceeds 4096 B with CV: buffered SH+EE+Cert
    go out when CV+Fin arrive, or everything in one; never SH alone first
    unless the overflow genuinely happens."""
    flights = server_flights("x25519", "falcon512", BufferPolicy.DEFAULT)
    total = sum(size for _, size in flights)
    assert total > 0
    # reassembling either policy's flights yields identical byte streams
    optimized = server_flights("x25519", "falcon512", BufferPolicy.OPTIMIZED)
    assert total == sum(size for _, size in optimized)


@pytest.mark.parametrize("kem,sig", [("kyber512", "dilithium2"), ("x25519", "rsa:1024")])
def test_policies_produce_identical_bytes(kem, sig):
    """Buffering changes *when* bytes leave, never *what* bytes leave."""
    drbg = Drbg(f"same-bytes:{kem}:{sig}")
    cert, sk, store = make_server_credentials(sig, drbg.fork("ca"))

    def run(policy):
        client = TlsClient(kem, sig, store, Drbg("fixed-client"))
        server = TlsServer(kem, sig, cert, sk, Drbg("fixed-server"), policy=policy)
        wire = b"".join(a.data for a in client.start() if isinstance(a, Send))
        sends = [a for a in server.receive(wire) if isinstance(a, Send)]
        return b"".join(s.data for s in sends)

    assert run(BufferPolicy.DEFAULT) == run(BufferPolicy.OPTIMIZED)


def test_handshake_completes_under_default_policy():
    drbg = Drbg("default-complete")
    cert, sk, store = make_server_credentials("dilithium2", drbg.fork("ca"))
    client = TlsClient("kyber512", "dilithium2", store, drbg.fork("c"))
    server = TlsServer("kyber512", "dilithium2", cert, sk, drbg.fork("s"),
                       policy=BufferPolicy.DEFAULT)
    wire = b"".join(a.data for a in client.start() if isinstance(a, Send))
    server_out = b"".join(a.data for a in server.receive(wire) if isinstance(a, Send))
    fin = b"".join(a.data for a in client.receive(server_out) if isinstance(a, Send))
    server.receive(fin)
    assert client.handshake_complete and server.handshake_complete
