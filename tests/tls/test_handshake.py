"""Full sans-io handshakes: lockstep client/server over every family."""

import pytest

from repro.crypto.drbg import Drbg
from repro.tls.actions import Send
from repro.tls.certs import TrustStore, make_server_credentials
from repro.tls.client import TlsClient
from repro.tls.errors import (
    ALERT_BAD_RECORD_MAC,
    ALERT_HANDSHAKE_FAILURE,
    BadRecordMac,
    HandshakeFailure,
)
from repro.tls.server import BufferPolicy, TlsServer


def lockstep(kem, sig, policy=BufferPolicy.OPTIMIZED, seed="hs-test",
             client_kwargs=None, creds=None):
    drbg = Drbg(seed)
    if creds is None:
        creds = make_server_credentials(sig, drbg.fork("ca"))
    cert, sk, store = creds
    client = TlsClient(kem, sig, store, drbg.fork("client"), **(client_kwargs or {}))
    server = TlsServer(kem, sig, cert, sk, drbg.fork("server"), policy=policy)
    actions = client.start()
    client_out = b"".join(a.data for a in actions if isinstance(a, Send))
    server_actions = server.receive(client_out)
    server_out = b"".join(a.data for a in server_actions if isinstance(a, Send))
    client_actions = client.receive(server_out)
    fin = b"".join(a.data for a in client_actions if isinstance(a, Send))
    server.receive(fin)
    return client, server, [a for a in server_actions if isinstance(a, Send)]


FAST_COMBOS = [
    ("x25519", "rsa:1024"),
    ("p256", "rsa:1024"),
    ("kyber512", "dilithium2"),
    ("kyber90s512", "dilithium2_aes"),
    ("bikel1", "falcon512"),
    ("hqc128", "falcon512"),
    ("p256_kyber512", "p256_dilithium2"),
]


@pytest.mark.parametrize("kem,sig", FAST_COMBOS)
def test_handshake_completes_and_secrets_agree(kem, sig):
    client, server, _ = lockstep(kem, sig)
    assert client.handshake_complete and server.handshake_complete
    assert client.application_secrets == server.application_secrets


def test_application_secrets_unavailable_before_completion():
    client = TlsClient("x25519", "rsa:1024", TrustStore(roots={}), Drbg("x"))
    with pytest.raises(HandshakeFailure):
        _ = client.application_secrets


def test_group_mismatch_fails_closed():
    drbg = Drbg("mismatch")
    cert, sk, store = make_server_credentials("rsa:1024", drbg.fork("ca"))
    client = TlsClient("x25519", "rsa:1024", store, drbg.fork("c"))
    server = TlsServer("kyber512", "rsa:1024", cert, sk, drbg.fork("s"))
    actions = client.start()
    wire = b"".join(a.data for a in actions if isinstance(a, Send))
    sends = [a for a in server.receive(wire) if isinstance(a, Send)]
    assert server.failed and not server.handshake_complete
    assert isinstance(server.failure, HandshakeFailure)
    assert "offered" in str(server.failure)
    assert server.alert_sent == ALERT_HANDSHAKE_FAILURE
    assert sends and "Alert" in sends[-1].label
    # terminal: further bytes are dead letters
    assert server.receive(wire) == []


def test_sig_scheme_mismatch_fails_closed():
    drbg = Drbg("sigmismatch")
    cert, sk, store = make_server_credentials("falcon512", drbg.fork("ca"))
    client = TlsClient("x25519", "rsa:1024", store, drbg.fork("c"))
    server = TlsServer("x25519", "falcon512", cert, sk, drbg.fork("s"))
    wire = b"".join(a.data for a in client.start() if isinstance(a, Send))
    server.receive(wire)
    assert server.failed and "does not accept" in str(server.failure)
    assert server.alert_sent == ALERT_HANDSHAKE_FAILURE


def test_client_rejects_untrusted_certificate():
    drbg = Drbg("untrusted")
    cert, sk, _ = make_server_credentials("rsa:1024", drbg.fork("real-ca"))
    _, _, other_store = make_server_credentials("rsa:1024", drbg.fork("other-ca"))
    client = TlsClient("x25519", "rsa:1024", other_store, drbg.fork("c"))
    server = TlsServer("x25519", "rsa:1024", cert, sk, drbg.fork("s"))
    wire = b"".join(a.data for a in client.start() if isinstance(a, Send))
    server_out = b"".join(a.data for a in server.receive(wire) if isinstance(a, Send))
    client.receive(server_out)
    assert client.failed and not client.handshake_complete
    assert isinstance(client.failure, HandshakeFailure)
    assert client.alert_sent == ALERT_HANDSHAKE_FAILURE


def test_client_rejects_wrong_server_name():
    drbg = Drbg("sni")
    creds = make_server_credentials("rsa:1024", drbg.fork("ca"))
    client, server, _ = lockstep("x25519", "rsa:1024", creds=creds, seed="sni-run",
                                 client_kwargs={"server_name": "other.host"})
    assert client.failed and "subject" in str(client.failure)
    # the client's alert reached the server, which closed without echoing
    assert server.failed and server.alert_received == client.alert_sent
    assert server.alert_sent is None


def test_tampered_server_flight_detected():
    drbg = Drbg("tamper-flight")
    cert, sk, store = make_server_credentials("rsa:1024", drbg.fork("ca"))
    client = TlsClient("x25519", "rsa:1024", store, drbg.fork("c"))
    server = TlsServer("x25519", "rsa:1024", cert, sk, drbg.fork("s"))
    wire = b"".join(a.data for a in client.start() if isinstance(a, Send))
    server_out = bytearray(
        b"".join(a.data for a in server.receive(wire) if isinstance(a, Send)))
    server_out[-20] ^= 0x01  # corrupt an encrypted byte near the Finished
    client.receive(bytes(server_out))
    assert client.failed and not client.handshake_complete
    assert isinstance(client.failure, BadRecordMac)
    assert client.alert_sent == ALERT_BAD_RECORD_MAC


def test_hybrid_handshake_secret_length():
    client, server, _ = lockstep("p256_kyber512", "rsa:1024", seed="hyb-len")
    assert client.handshake_complete
    # hybrid shared secret = 32 (p256 x-coord) + 32 (kyber) fed the schedule;
    # application secrets still hash-sized
    assert len(client.application_secrets[0]) == 32


def test_fragmented_delivery_any_chunking():
    """The sans-io machines must accept arbitrary TCP chunk boundaries."""
    drbg = Drbg("chunks")
    cert, sk, store = make_server_credentials("dilithium2", drbg.fork("ca"))
    client = TlsClient("kyber512", "dilithium2", store, drbg.fork("c"))
    server = TlsServer("kyber512", "dilithium2", cert, sk, drbg.fork("s"))
    wire = b"".join(a.data for a in client.start() if isinstance(a, Send))
    server_sends = []
    for i in range(0, len(wire), 100):
        server_sends.extend(
            a for a in server.receive(wire[i: i + 100]) if isinstance(a, Send))
    server_out = b"".join(a.data for a in server_sends)
    fin = b""
    for i in range(0, len(server_out), 333):
        actions = client.receive(server_out[i: i + 333])
        fin += b"".join(a.data for a in actions if isinstance(a, Send))
    server.receive(fin)
    assert client.handshake_complete and server.handshake_complete
    assert client.application_secrets == server.application_secrets


def test_server_bytes_accounting():
    client, server, sends = lockstep("x25519", "rsa:1024", seed="acct")
    assert server.bytes_out == sum(len(s.data) for s in sends)
    assert client.bytes_out > 0
