"""Application-data channel over completed PQ handshakes."""

import pytest

from repro.crypto.drbg import Drbg
from repro.tls.actions import Send
from repro.tls.certs import make_server_credentials
from repro.tls.client import TlsClient
from repro.tls.errors import BadRecordMac, DecodeError, PeerAlert, TlsError
from repro.tls.records import CONTENT_ALERT, CONTENT_APPLICATION_DATA
from repro.tls.server import TlsServer
from repro.tls.session import SecureChannel, establish_channels


@pytest.fixture(scope="module")
def completed_handshake():
    drbg = Drbg("session-test")
    cert, sk, store = make_server_credentials("dilithium2", drbg.fork("ca"))
    client = TlsClient("kyber512", "dilithium2", store, drbg.fork("c"))
    server = TlsServer("kyber512", "dilithium2", cert, sk, drbg.fork("s"))
    out = b"".join(a.data for a in client.start() if isinstance(a, Send))
    server_out = b"".join(a.data for a in server.receive(out) if isinstance(a, Send))
    fin = b"".join(a.data for a in client.receive(server_out) if isinstance(a, Send))
    server.receive(fin)
    assert client.handshake_complete and server.handshake_complete
    return client, server


def test_bidirectional_application_data(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    wire = client_chan.send(b"GET / HTTP/1.1\r\n\r\n")
    assert server_chan.receive(wire) == b"GET / HTTP/1.1\r\n\r\n"
    reply = server_chan.send(b"HTTP/1.1 200 OK\r\n\r\nhello pq world")
    assert client_chan.receive(reply) == b"HTTP/1.1 200 OK\r\n\r\nhello pq world"


def test_large_payload_fragments(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    payload = bytes(i & 0xFF for i in range(100_000))
    wire = client_chan.send(payload)
    assert server_chan.receive(wire) == payload


def test_partial_delivery_buffers(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    wire = client_chan.send(b"split across arrivals")
    assert server_chan.receive(wire[:10]) == b""
    assert server_chan.receive(wire[10:]) == b"split across arrivals"


def test_wire_is_actually_encrypted(completed_handshake):
    client_chan, _ = establish_channels(*completed_handshake)
    wire = client_chan.send(b"super secret payload")
    assert b"super secret" not in wire


def test_tampering_detected(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    wire = bytearray(client_chan.send(b"important"))
    wire[8] ^= 0x01
    with pytest.raises(BadRecordMac):
        server_chan.receive(bytes(wire))


def test_direction_separation(completed_handshake):
    """A client record replayed to the client itself must not decrypt."""
    client_chan, _ = establish_channels(*completed_handshake)
    wire = client_chan.send(b"loopback?")
    with pytest.raises(BadRecordMac):
        client_chan.receive(wire)


def test_close_notify_flow(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    server_chan.receive(client_chan.send(b"bye soon"))
    close_wire = client_chan.send_close()
    assert server_chan.receive(close_wire) == b""
    assert server_chan.closed and client_chan.closed
    with pytest.raises(TlsError):
        client_chan.send(b"after close")
    with pytest.raises(TlsError):
        server_chan.receive(
            SecureChannel.for_client(completed_handshake[0]).send(b"x"))


def test_malformed_alert_is_decode_error(completed_handshake):
    """A 1-byte alert payload must raise DecodeError, not read as a peer alert."""
    client_chan, server_chan = establish_channels(*completed_handshake)
    record = client_chan._send.encrypt(CONTENT_ALERT, b"\x02")
    with pytest.raises(DecodeError):
        server_chan.receive(record.encode())


def test_oversized_alert_is_decode_error(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    record = client_chan._send.encrypt(CONTENT_ALERT, b"\x02\x28\x00")
    with pytest.raises(DecodeError):
        server_chan.receive(record.encode())


def test_well_formed_alert_still_surfaces_peer_alert(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    record = client_chan._send.encrypt(CONTENT_ALERT, b"\x02\x28")  # handshake_failure
    with pytest.raises(PeerAlert) as exc:
        server_chan.receive(record.encode())
    assert exc.value.code == 40


def test_app_data_after_close_is_clean_tls_error(completed_handshake):
    """Records following close_notify fail loudly, not as MAC noise."""
    client_chan, server_chan = establish_channels(*completed_handshake)
    assert server_chan.receive(client_chan.send_close()) == b""
    # bypass the sender-side closed guard to forge a post-close record
    record = client_chan._send.encrypt(CONTENT_APPLICATION_DATA, b"late")
    with pytest.raises(TlsError) as exc:
        server_chan.receive(record.encode())
    assert not isinstance(exc.value, BadRecordMac)
    assert "close_notify" in str(exc.value)


def test_key_update_rotates_one_direction(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    assert server_chan.receive(client_chan.initiate_key_update()) == b""
    assert client_chan.send_generation == 1
    assert server_chan.receive_generation == 1
    assert server_chan.receive(client_chan.send(b"fresh keys")) == b"fresh keys"
    # the reverse direction is untouched
    assert server_chan.send_generation == 0
    assert client_chan.receive(server_chan.send(b"old keys")) == b"old keys"


def test_key_update_request_triggers_reply(completed_handshake):
    client_chan, server_chan = establish_channels(*completed_handshake)
    server_chan.receive(client_chan.initiate_key_update(request_update=True))
    reply = server_chan.take_pending()
    assert reply  # the automatic KeyUpdate(update_not_requested) response
    assert client_chan.receive(reply) == b""
    assert client_chan.receive_generation == 1
    assert server_chan.send_generation == 1
    assert client_chan.receive(server_chan.send(b"both rotated")) == b"both rotated"


def test_channels_require_completed_handshake():
    client = TlsClient("x25519", "rsa:1024",
                       make_server_credentials("rsa:1024", Drbg("q"))[2], Drbg("c"))
    with pytest.raises(Exception):
        SecureChannel.for_client(client)
