"""x509-lite certificates and the minimal PKI."""

import pytest

from repro.crypto.drbg import Drbg
from repro.tls.certs import (
    Certificate,
    CertificateAuthority,
    TrustStore,
    make_server_credentials,
)
from repro.tls.errors import DecodeError, HandshakeFailure


@pytest.fixture(scope="module")
def pki():
    drbg = Drbg("pki-test")
    cert, sk, store = make_server_credentials("dilithium2", drbg)
    return cert, sk, store


def test_certificate_codec_roundtrip(pki):
    cert, _, _ = pki
    assert Certificate.decode(cert.encode()) == cert


def test_decode_rejects_truncation_and_trailing(pki):
    cert, _, _ = pki
    wire = cert.encode()
    with pytest.raises(DecodeError):
        Certificate.decode(wire[:-1])
    with pytest.raises(DecodeError):
        Certificate.decode(wire + b"\x00")


def test_chain_verification(pki):
    cert, _, store = pki
    leaf = store.verify_chain([cert], expected_subject="server.repro.test")
    assert leaf.algorithm == "dilithium2"


def test_wrong_subject_rejected(pki):
    cert, _, store = pki
    with pytest.raises(HandshakeFailure, match="subject"):
        store.verify_chain([cert], expected_subject="evil.example")


def test_tampered_certificate_rejected(pki):
    cert, _, store = pki
    tampered = Certificate(
        subject=cert.subject, issuer=cert.issuer, algorithm=cert.algorithm,
        public_key=bytes([cert.public_key[0] ^ 1]) + cert.public_key[1:],
        issuer_algorithm=cert.issuer_algorithm, signature=cert.signature,
    )
    with pytest.raises(HandshakeFailure, match="signature"):
        store.verify_chain([tampered])


def test_unknown_issuer_rejected(pki):
    cert, _, _ = pki
    empty_store = TrustStore(roots={})
    with pytest.raises(HandshakeFailure, match="unknown issuer"):
        empty_store.verify_chain([cert])


def test_empty_chain_rejected(pki):
    _, _, store = pki
    with pytest.raises(HandshakeFailure, match="empty"):
        store.verify_chain([])


def test_two_element_chain_with_intermediate():
    drbg = Drbg("chain-test")
    root = CertificateAuthority.create("falcon512", drbg, name="root")
    intermediate_ca = CertificateAuthority.create("falcon512", drbg, name="intermediate")
    intermediate_cert = root.issue("intermediate", "falcon512",
                                   intermediate_ca.public_key, drbg)
    leaf = intermediate_ca.issue("leaf.example", "falcon512",
                                 b"\x01" * 897, drbg)
    # the intermediate signs the leaf, the root signs the intermediate;
    # wire chain = [leaf, intermediate], root key in the trust store
    leaf_fixed = Certificate(
        subject=leaf.subject, issuer="intermediate", algorithm=leaf.algorithm,
        public_key=leaf.public_key, issuer_algorithm=leaf.issuer_algorithm,
        signature=leaf.signature,
    )
    store = TrustStore(roots={"root": ("falcon512", root.public_key)})
    verified = store.verify_chain([leaf_fixed, intermediate_cert],
                                  expected_subject="leaf.example")
    assert verified.subject == "leaf.example"


def test_issuer_algorithm_mismatch_rejected():
    drbg = Drbg("alg-mismatch")
    cert, _, store = make_server_credentials("falcon512", drbg)
    wrong_store = TrustStore(
        roots={name: ("dilithium2", key) for name, (_, key) in store.roots.items()}
    )
    with pytest.raises(HandshakeFailure, match="algorithm"):
        wrong_store.verify_chain([cert])


def test_certificate_size_tracks_algorithm():
    drbg = Drbg("sizes")
    small, _, _ = make_server_credentials("falcon512", drbg.fork("f"))
    big, _, _ = make_server_credentials("dilithium5", drbg.fork("d"))
    # cert = pk + issuer signature + fixed overhead
    assert len(small.encode()) < len(big.encode())
    assert len(big.encode()) > 2592 + 4595  # at least pk + CA signature


def test_composite_credentials():
    drbg = Drbg("composite-creds")
    cert, sk, store = make_server_credentials("p256_dilithium2", drbg)
    assert store.verify_chain([cert]).algorithm == "p256_dilithium2"
