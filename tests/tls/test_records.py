"""Record layer: framing, fragmentation, AEAD protection."""

import pytest
from hypothesis import given, strategies as st

from repro.tls.errors import BadRecordMac, DecodeError
from repro.tls.keyschedule import TrafficKeys
from repro.tls.records import (
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    MAX_FRAGMENT,
    Record,
    RecordProtection,
    decode_records,
    encrypt_handshake_stream,
    fragment_handshake,
)


def _keys(seed: bytes = b"\x01") -> TrafficKeys:
    return TrafficKeys(key=seed * 16, iv=seed * 12)


def test_record_encode_shape():
    wire = Record(CONTENT_HANDSHAKE, b"abc").encode()
    assert wire[0] == 22
    assert wire[1:3] == b"\x03\x03"
    assert int.from_bytes(wire[3:5], "big") == 3
    assert wire[5:] == b"abc"


@given(st.lists(st.binary(min_size=0, max_size=100), min_size=0, max_size=5))
def test_decode_records_roundtrip(payloads):
    stream = b"".join(Record(CONTENT_HANDSHAKE, p).encode() for p in payloads)
    records, rest = decode_records(stream)
    assert rest == b""
    assert [r.payload for r in records] == payloads


def test_decode_partial_record_buffered():
    wire = Record(CONTENT_HANDSHAKE, b"x" * 50).encode()
    records, rest = decode_records(wire[:30])
    assert records == [] and rest == wire[:30]
    records, rest = decode_records(rest + wire[30:])
    assert len(records) == 1 and rest == b""


def test_decode_rejects_oversized_record():
    header = bytes([22, 3, 3]) + (MAX_FRAGMENT + 300).to_bytes(2, "big")
    with pytest.raises(DecodeError):
        decode_records(header + b"\x00" * 10)


def test_fragmentation_boundaries():
    big = b"z" * (2 * MAX_FRAGMENT + 100)
    records = fragment_handshake(big)
    assert [len(r.payload) for r in records] == [MAX_FRAGMENT, MAX_FRAGMENT, 100]
    assert b"".join(r.payload for r in records) == big


def test_protection_roundtrip():
    send = RecordProtection(_keys())
    recv = RecordProtection(_keys())
    record = send.encrypt(CONTENT_HANDSHAKE, b"secret handshake bytes")
    assert record.content_type == CONTENT_APPLICATION_DATA
    content_type, plaintext = recv.decrypt(record)
    assert content_type == CONTENT_HANDSHAKE
    assert plaintext == b"secret handshake bytes"


def test_sequence_numbers_advance():
    send = RecordProtection(_keys())
    recv = RecordProtection(_keys())
    r1 = send.encrypt(CONTENT_HANDSHAKE, b"one")
    r2 = send.encrypt(CONTENT_HANDSHAKE, b"two")
    assert r1.payload != r2.payload
    assert recv.decrypt(r1)[1] == b"one"
    assert recv.decrypt(r2)[1] == b"two"


def test_out_of_order_decryption_fails():
    send = RecordProtection(_keys())
    recv = RecordProtection(_keys())
    send.encrypt(CONTENT_HANDSHAKE, b"one")
    r2 = send.encrypt(CONTENT_HANDSHAKE, b"two")
    with pytest.raises(BadRecordMac):
        recv.decrypt(r2)  # receiver still expects sequence 0


def test_tampered_record_rejected():
    send = RecordProtection(_keys())
    recv = RecordProtection(_keys())
    record = send.encrypt(CONTENT_HANDSHAKE, b"payload")
    bad = Record(record.content_type, bytes([record.payload[0] ^ 1]) + record.payload[1:])
    with pytest.raises(BadRecordMac):
        recv.decrypt(bad)


def test_decrypt_requires_outer_type_23():
    recv = RecordProtection(_keys())
    with pytest.raises(DecodeError):
        recv.decrypt(Record(CONTENT_HANDSHAKE, b"\x00" * 32))


def test_padding_stripped():
    """Inner plaintext zero padding must be removed per RFC 8446 §5.4."""
    send = RecordProtection(_keys())
    recv = RecordProtection(_keys())
    # hand-craft a padded inner plaintext: data || type || zeros
    inner = b"data" + bytes([CONTENT_HANDSHAKE]) + b"\x00" * 7
    total = len(inner) + 16
    aad = bytes([23, 3, 3]) + total.to_bytes(2, "big")
    ciphertext = send._aead.encrypt(send._nonce(), inner, aad)
    content_type, plaintext = recv.decrypt(Record(CONTENT_APPLICATION_DATA, ciphertext))
    assert (content_type, plaintext) == (CONTENT_HANDSHAKE, b"data")


def test_all_padding_record_rejected():
    send = RecordProtection(_keys())
    recv = RecordProtection(_keys())
    inner = b"\x00" * 8
    aad = bytes([23, 3, 3]) + (len(inner) + 16).to_bytes(2, "big")
    ciphertext = send._aead.encrypt(send._nonce(), inner, aad)
    with pytest.raises(DecodeError):
        recv.decrypt(Record(CONTENT_APPLICATION_DATA, ciphertext))


@given(st.integers(min_value=0, max_value=70000))
def test_encrypt_handshake_stream_reassembles(size):
    send = RecordProtection(_keys())
    recv = RecordProtection(_keys())
    payload = bytes(i & 0xFF for i in range(size))
    records = encrypt_handshake_stream(send, payload)
    reassembled = b"".join(recv.decrypt(r)[1] for r in records)
    assert reassembled == payload
