"""The session-scenario registry and its wire-delta self-audit."""

import pytest

from repro.tls.scenarios import (
    CLIENT_HELLO_RESUME_DELTA,
    SERVER_HELLO_RESUME_DELTA,
    SESSION_SCENARIOS,
    computed_wire_deltas,
    declared_wire_deltas,
    session_scenario,
)


def test_registry_has_all_four_shapes():
    assert set(SESSION_SCENARIOS) == {"full", "resume", "mtls", "hrr"}
    assert not SESSION_SCENARIOS["full"].resumption
    assert SESSION_SCENARIOS["resume"].resumption
    assert SESSION_SCENARIOS["mtls"].client_auth
    assert SESSION_SCENARIOS["hrr"].hello_retry


def test_unknown_session_lists_the_known_ones():
    with pytest.raises(KeyError, match="full"):
        session_scenario("quic")


def test_declared_deltas_match_the_live_encoders():
    # the constants the byte-accounting tests (and WIRE005) rely on are
    # recomputed here from the real ClientHello/ServerHello encoders
    assert computed_wire_deltas() == declared_wire_deltas()
    assert declared_wire_deltas() == {
        "client_hello_resume_delta": CLIENT_HELLO_RESUME_DELTA,
        "server_hello_resume_delta": SERVER_HELLO_RESUME_DELTA,
    }
