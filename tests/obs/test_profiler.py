"""Self-profiler: categorization, flame layout, live sampling smoke."""

import time

from repro.obs.flame import flame_svg, flame_text
from repro.obs.profiler import SamplingProfiler, categorize, stack_category


def test_categorize_prefix_precedence():
    assert categorize("repro.crypto.kernels.gf256") == "kernel"
    assert categorize("repro.crypto.modmath") == "crypto"
    assert categorize("repro.pqc.kyber") == "pqc/kyber"
    assert categorize("repro.tls.handshake") == "tls"
    assert categorize("repro.netsim.tcp") == "netsim"
    assert categorize("repro.core.executor") == "harness"
    assert categorize("hashlib") == "other"


def test_categorize_refines_pqc_and_kernel_by_family():
    # repro.pqc.* and repro.crypto.kernels.* frames carry the algorithm
    # family, so flame views separate hqc decode from dilithium sign
    assert categorize("repro.pqc.hqc.kem") == "pqc/hqc"
    assert categorize("repro.pqc.dilithium.sig") == "pqc/dilithium"
    assert categorize("repro.pqc.sphincs.wots") == "pqc/sphincs"
    assert categorize("repro.pqc.falcon.sig") == "pqc/falcon"
    assert categorize("repro.crypto.kernels.dilithium") == "kernel/dilithium"
    assert categorize("repro.crypto.kernels.hqc") == "kernel/hqc"
    assert categorize("repro.crypto.kernels.kyber") == "kernel/kyber"
    # non-family modules under the same roots keep the plain category
    assert categorize("repro.pqc") == "pqc"
    assert categorize("repro.pqc.registry") == "pqc"
    assert categorize("repro.crypto.kernels") == "kernel"
    assert categorize("repro.crypto.kernels.gf256") == "kernel"


def test_stack_category_uses_innermost_repro_frame():
    stack = ("repro.core.cli:main", "repro.tls.handshake:run",
             "repro.crypto.kernels.aes:encrypt", "hashlib:sha256")
    assert stack_category(stack) == "kernel"
    assert stack_category(("pytest:main", "hashlib:x")) == "other"


def synthetic_profiler():
    """A profiler with hand-fed samples: deterministic aggregation tests."""
    profiler = SamplingProfiler(interval=0.001)
    profiler.stacks = {
        ("repro.core.cli:main", "repro.crypto.kernels.gf256:poly_mul"): 60,
        ("repro.core.cli:main", "repro.crypto.kernels.gf256:poly_mul",
         "repro.crypto.kernels.gf256:_mul"): 30,
        ("repro.core.cli:main", "repro.netsim.tcp:deliver"): 10,
    }
    profiler.sample_count = 100
    profiler.wall_seconds = 0.1
    return profiler


def test_category_seconds_and_hotspots():
    profiler = synthetic_profiler()
    by_category = profiler.category_seconds()
    assert by_category == {"kernel": 0.090, "netsim": 0.010}
    spots = profiler.hotspots(top=2)
    assert spots[0].frame == "repro.crypto.kernels.gf256:poly_mul"
    assert spots[0].self_seconds == 0.060
    assert spots[0].total_seconds == 0.090     # includes the _mul child
    assert spots[0].category == "kernel"
    assert spots[1].frame == "repro.crypto.kernels.gf256:_mul"


def test_to_tracer_builds_a_merged_flame():
    profiler = synthetic_profiler()
    tracer = profiler.to_tracer()
    assert tracer.tracks() == ["host-cpu"]
    spans = {s.name: s for s in tracer.spans}
    # one root span covering all 100 samples, children merged underneath
    root = spans["repro.core.cli:main"]
    assert root.duration == 0.1 and root.depth == 0
    assert spans["repro.crypto.kernels.gf256:poly_mul"].duration == 0.09
    assert spans["repro.crypto.kernels.gf256:_mul"].duration == 0.03
    assert spans["repro.crypto.kernels.gf256:_mul"].depth == 2
    assert spans["repro.netsim.tcp:deliver"].cat == "netsim"
    # the merged flame renders through every existing view
    assert "poly_mul" in flame_text(tracer, "host-cpu")


def test_flame_svg_is_deterministic_and_well_formed():
    profiler = synthetic_profiler()
    first = flame_svg(profiler.to_tracer(), "host-cpu")
    second = flame_svg(profiler.to_tracer(), "host-cpu")
    assert first == second
    assert first.startswith("<svg ") and first.rstrip().endswith("</svg>")
    assert first.count("<rect") >= 4     # background + 4 frames
    assert "poly_mul" in first


def test_report_mentions_categories_and_frames():
    report = synthetic_profiler().report(top=2)
    assert "kernel" in report and "poly_mul" in report
    assert "100 samples" in report


def test_live_sampling_attributes_repro_work():
    # a real (brief) profile of actual kernel work: assert only what
    # cannot flake — samples landed and repro frames were attributed
    from repro.crypto.kernels import gf256

    with SamplingProfiler(interval=0.0005) as profiler:
        a = list(range(1, 65))
        deadline = time.perf_counter() + 0.2
        while time.perf_counter() < deadline:
            gf256.poly_mul(a, a)
    assert profiler.sample_count > 0
    assert profiler.wall_seconds > 0
    if profiler.stacks:  # scheduling may starve the sampler, but if it ran:
        categories = {stack_category(s) for s in profiler.stacks}
        assert categories & {"kernel", "crypto", "other"}


def test_profiler_rejects_bad_interval_and_double_start():
    import pytest

    with pytest.raises(ValueError):
        SamplingProfiler(interval=0)
    profiler = SamplingProfiler()
    profiler.start()
    try:
        with pytest.raises(RuntimeError):
            profiler.start()
    finally:
        profiler.stop()
