"""Flame views: tree building, library breakdowns, slow summaries."""

import pytest

from repro.obs.flame import (
    build_tree,
    flame_text,
    library_breakdown,
    library_shares,
    render_slow_summary,
    summarize_slow,
)
from repro.obs.tracer import Tracer


def _traced_batch():
    tracer = Tracer()
    tracer.begin("server-cpu", "tls-actions", 0.0, cat="batch")
    tracer.span("server-cpu", "sign", 0.0, 0.003, cat="libcrypto")
    tracer.span("server-cpu", "frame", 0.003, 0.004, cat="libssl")
    tracer.end("server-cpu", 0.004)
    tracer.span("server-cpu", "packet", 0.004, 0.005, cat="kernel")
    return tracer


def test_build_tree_reconstructs_containment():
    roots = build_tree(_traced_batch().spans_on("server-cpu"))
    assert [r.name for r in roots] == ["tls-actions", "packet"]
    batch = roots[0]
    assert [c.name for c in batch.children] == ["sign", "frame"]
    assert batch.duration == pytest.approx(0.004)
    # wrapper time fully covered by children -> no self time
    assert batch.self_time == pytest.approx(0.0)
    assert batch.children[0].self_time == pytest.approx(0.003)


def test_flame_text_annotates_percentages():
    text = flame_text(_traced_batch(), "server-cpu")
    lines = text.splitlines()
    assert "5.000 ms total" in lines[0]
    assert any("80.0%" in line and "tls-actions" in line for line in lines)
    assert any("sign" in line and "[libcrypto]" in line for line in lines)
    assert flame_text(Tracer(), "nope") == "track 'nope': no spans"


def test_library_breakdown_skips_containers():
    totals = library_breakdown(_traced_batch(), "server-cpu")
    assert totals == {"libcrypto": pytest.approx(0.003),
                      "libssl": pytest.approx(0.001),
                      "kernel": pytest.approx(0.001)}
    shares = library_shares(_traced_batch(), "server-cpu")
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["libcrypto"] == pytest.approx(0.6)


def test_summarize_slow_ranks_by_self_time():
    tracer = _traced_batch()
    tracer.instant("tcp-server", "retransmit", 0.002, seq=0)
    tracer.instant("tcp-server", "enter-recovery", 0.002)
    tracer.instant("wire-s2c", "seg", 0.001)
    tracer.instant("wire-s2c", "seg", 0.0045)
    summary = summarize_slow(tracer, top=3)
    assert summary.retransmits == 1
    assert summary.recovery_episodes == 1
    assert summary.top_spans[0][1] == "sign"
    assert summary.longest_stall == (pytest.approx(0.001), pytest.approx(0.0035))
    text = render_slow_summary(summary)
    assert "retransmits: 1" in text
    assert "sign" in text


def test_summarize_slow_ignores_phase_lane():
    tracer = _traced_batch()
    tracer.span("phases", "handshake", 0.0, 1.0, cat="phase")
    summary = summarize_slow(tracer, top=1)
    assert summary.top_spans[0][0] == "server-cpu"
