"""Exporters: Chrome trace_event JSON and JSONL round-trips."""

import json

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer


def _tracer():
    tracer = Tracer()
    tracer.begin("client-cpu", "batch", 0.0, cat="batch")
    tracer.span("client-cpu", "sign", 0.0, 0.001, cat="libcrypto", size=64)
    tracer.end("client-cpu", 0.001)
    tracer.span("phases", "handshake", 0.0, 0.002, cat="phase")
    tracer.instant("tcp-client", "retransmit", 0.0015, seq=1)
    tracer.counter("tcp-client", "cwnd", 0.0015, 4.0)
    return tracer


def test_chrome_events_cover_all_record_shapes():
    events = chrome_trace_events(_tracer())
    phases = [e["ph"] for e in events]
    assert phases.count("X") == 3
    assert phases.count("i") == 1
    assert phases.count("C") == 1
    # two metadata events (name + sort index) per track
    assert phases.count("M") == 2 * 3


def test_chrome_timestamps_are_microseconds():
    events = chrome_trace_events(_tracer())
    sign = next(e for e in events if e.get("name") == "sign")
    assert sign["ts"] == 0.0
    assert sign["dur"] == 1000.0  # 1 ms -> 1000 us
    assert sign["args"] == {"size": 64}


def test_track_lanes_are_stable_and_named():
    events = chrome_trace_events(_tracer())
    names = {e["args"]["name"]: e["tid"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    # preferred ordering puts phases first, then client-cpu
    assert names["phases"] == 1
    assert names["client-cpu"] == 2
    # every event's tid maps to a declared lane
    assert {e["tid"] for e in events} <= set(names.values())


def test_chrome_trace_is_valid_json_on_disk(tmp_path):
    path = write_chrome_trace(_tracer(), tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) == len(chrome_trace(_tracer())["traceEvents"])


def test_jsonl_one_valid_object_per_line(tmp_path):
    path = write_jsonl(_tracer(), tmp_path / "trace.jsonl")
    lines = path.read_text().splitlines()
    objects = [json.loads(line) for line in lines]
    assert len(objects) == len(jsonl_lines(_tracer()))
    kinds = {o["type"] for o in objects}
    assert kinds == {"span", "instant", "counter"}


def test_metrics_json_round_trip(tmp_path):
    metrics = Metrics()
    metrics.inc("cache.script.hit", 3)
    metrics.observe("handshake.total", 0.004)
    path = write_metrics_json(metrics, tmp_path / "metrics.json")
    loaded = json.loads(path.read_text())
    assert loaded["counters"]["cache.script.hit"] == 3
    assert loaded["histograms"]["handshake.total"]["count"] == 1
