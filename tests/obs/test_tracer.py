"""Tracer: span nesting, depth bookkeeping, and the disabled null object."""

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


def test_complete_spans_record_interval_and_args():
    tracer = Tracer()
    record = tracer.span("cpu", "sign", 1.0, 1.5, cat="libcrypto", size=32)
    assert record.duration == pytest.approx(0.5)
    assert record.depth == 0
    assert record.args == (("size", 32),)
    assert tracer.spans == [record]


def test_begin_end_nest_and_assign_depth():
    tracer = Tracer()
    tracer.begin("cpu", "outer", 0.0, cat="batch")
    inner = tracer.span("cpu", "inner", 0.1, 0.2, cat="libssl")
    outer = tracer.end("cpu", 0.3)
    assert inner.depth == 1
    assert outer.depth == 0
    assert outer.start == 0.0 and outer.end == 0.3
    # containment holds: the child lies inside the parent interval
    assert outer.start <= inner.start and inner.end <= outer.end


def test_nesting_is_per_track():
    tracer = Tracer()
    tracer.begin("a", "open-on-a", 0.0)
    sibling = tracer.span("b", "on-other-track", 0.0, 1.0)
    assert sibling.depth == 0
    tracer.end("a", 1.0)


def test_end_without_begin_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError, match="no open span"):
        tracer.end("cpu", 1.0)


def test_tracks_preserve_first_seen_order():
    tracer = Tracer()
    tracer.span("beta", "x", 0.0, 1.0)
    tracer.instant("alpha", "e", 0.5)
    tracer.counter("gamma", "cwnd", 0.7, 10)
    assert tracer.tracks() == ["beta", "alpha", "gamma"]
    assert [s.name for s in tracer.spans_on("beta")] == ["x"]


def test_total_by_cat_counts_innermost_spans_only():
    tracer = Tracer()
    tracer.begin("cpu", "batch", 0.0, cat="batch")
    tracer.span("cpu", "sign", 0.0, 0.4, cat="libcrypto")
    tracer.span("cpu", "frame", 0.4, 0.5, cat="libssl")
    tracer.end("cpu", 0.5)
    totals = tracer.total_by_cat("cpu")
    assert totals == {"libcrypto": pytest.approx(0.4),
                      "libssl": pytest.approx(0.1)}
    assert "batch" not in totals  # the wrapper's time belongs to its children


def test_null_tracer_is_disabled_and_recordless():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    NULL_TRACER.begin("cpu", "x", 0.0)
    NULL_TRACER.span("cpu", "y", 0.0, 1.0, cat="libssl")
    NULL_TRACER.end("cpu", 1.0)  # no open-span bookkeeping -> no raise
    NULL_TRACER.instant("cpu", "e", 0.5)
    NULL_TRACER.counter("cpu", "c", 0.5, 1)
    assert NULL_TRACER.empty
    assert NULL_TRACER.tracks() == []
    assert NULL_TRACER.total_by_cat() == {}


def test_empty_property():
    tracer = Tracer()
    assert tracer.empty
    tracer.instant("t", "e", 0.0)
    assert not tracer.empty
