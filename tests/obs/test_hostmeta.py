"""Host metadata probes: Linux specifics must degrade, not raise."""

from repro.obs import hostmeta


def test_rss_probes_work_on_linux_hosts():
    if not hostmeta._LINUX:
        return  # covered by the guard test below
    rss = hostmeta.rss_bytes()
    peak = hostmeta.peak_rss_bytes()
    assert rss is not None and rss > 0
    assert peak is not None and peak >= 0


def test_rss_probes_return_none_off_linux(monkeypatch):
    # heartbeats and bench-check skip the metric instead of crashing
    monkeypatch.setattr(hostmeta, "_LINUX", False)
    assert hostmeta.rss_bytes() is None
    assert hostmeta.peak_rss_bytes() is None
    assert hostmeta.peak_rss_bytes(include_children=True) is None


def test_host_metadata_is_platform_agnostic():
    meta = hostmeta.host_metadata()
    for key in hostmeta.FINGERPRINT_KEYS:
        assert key in meta
    assert meta["python_major"].count(".") == 1
