"""Metrics registry: instruments, prefix reads, merging, snapshots."""

import pytest

from repro.obs.metrics import NULL_METRICS, Histogram, Metrics
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY


def synthetic_latencies(n, worker=0):
    out = []
    for i in range(n):
        x = (i * 2654435761 + worker * 97) % 10_000
        out.append(0.001 + (x / 10_000.0) ** 3 * 0.25)
    return out


def test_counter_accumulates_and_rejects_negative():
    metrics = Metrics()
    metrics.inc("tcp.retransmits")
    metrics.inc("tcp.retransmits", 2)
    assert metrics.value("tcp.retransmits") == 3
    with pytest.raises(ValueError):
        metrics.inc("tcp.retransmits", -1)


def test_gauge_last_write_wins():
    metrics = Metrics()
    metrics.set("cwnd", 10)
    metrics.set("cwnd", 4)
    assert metrics.value("cwnd") == 4


def test_histogram_statistics():
    metrics = Metrics()
    for value in (1.0, 2.0, 3.0, 10.0):
        metrics.observe("lat", value)
    histogram = metrics.histogram("lat")
    assert histogram.count == 4
    assert histogram.sum == 16.0
    assert histogram.mean == 4.0
    assert histogram.median == 2.5
    assert histogram.min == 1.0 and histogram.max == 10.0
    assert histogram.quantile(1.0) == 10.0
    assert histogram.quantile(0.0) == 1.0


def test_instruments_are_lazily_created_and_stable():
    metrics = Metrics()
    assert metrics.counter("a") is metrics.counter("a")
    assert metrics.names() == ["a"]


def test_value_raises_on_unknown_name():
    with pytest.raises(KeyError):
        Metrics().value("nope")


def test_counters_with_prefix_strips_prefix():
    metrics = Metrics()
    metrics.inc("cpu.client.libssl", 1.0)
    metrics.inc("cpu.client.libcrypto", 2.0)
    metrics.inc("cpu.server.libssl", 9.0)
    assert metrics.counters_with_prefix("cpu.client.") == {
        "libssl": 1.0, "libcrypto": 2.0}


def test_merge_folds_all_instrument_kinds():
    a, b = Metrics(), Metrics()
    a.inc("hits", 1)
    b.inc("hits", 2)
    b.set("cwnd", 7)
    b.observe("lat", 0.5)
    a.merge(b)
    assert a.value("hits") == 3
    assert a.value("cwnd") == 7
    assert a.histogram("lat").samples == [0.5]


def test_snapshot_shape_and_sorting():
    metrics = Metrics()
    metrics.inc("z", 1)
    metrics.inc("a", 1)
    metrics.observe("lat", 2.0)
    snapshot = metrics.snapshot()
    assert list(snapshot["counters"]) == ["a", "z"]
    assert snapshot["histograms"]["lat"]["count"] == 1
    assert set(snapshot["histograms"]["lat"]) == {
        "count", "sum", "min", "max", "mean", "median", "p90", "p99", "samples"}
    assert snapshot["histograms"]["lat"]["samples"] == [2.0]


def test_merge_snapshot_is_inverse_of_snapshot():
    source = Metrics()
    source.inc("hits", 3)
    source.set("cwnd", 9)
    source.observe("lat", 0.5)
    source.observe("lat", 1.5)

    via_merge, via_snapshot = Metrics(), Metrics()
    via_merge.inc("hits", 1)
    via_snapshot.inc("hits", 1)
    via_merge.merge(source)
    via_snapshot.merge_snapshot(source.snapshot())
    assert via_snapshot.snapshot() == via_merge.snapshot()
    assert via_snapshot.histogram("lat").samples == [0.5, 1.5]


def test_merge_snapshot_tolerates_presamples_snapshots():
    # snapshots cached before `samples` existed: counters/gauges restore,
    # histograms degrade silently instead of raising
    legacy = {"counters": {"hits": 2.0}, "gauges": {"cwnd": 4.0},
              "histograms": {"lat": {"count": 1, "sum": 1.0}}}
    metrics = Metrics()
    metrics.merge_snapshot(legacy)
    assert metrics.value("hits") == 2.0
    assert metrics.value("cwnd") == 4.0
    assert metrics.histogram("lat").samples == []


def test_histogram_quantile_uses_cached_sorted_view():
    histogram = Histogram("lat")
    for v in (3.0, 1.0, 2.0):
        histogram.observe(v)
    assert histogram.quantile(0.5) == 2.0
    assert histogram._sorted == [1.0, 2.0, 3.0]  # cached after first call
    histogram.observe(0.5)                        # invalidates the cache
    assert histogram._sorted is None
    assert histogram.quantile(0.0) == 0.5
    assert histogram.samples == [3.0, 1.0, 2.0, 0.5]  # stream order intact


def test_histogram_spills_to_constant_memory():
    histogram = Histogram("lat", retention=100)
    values = synthetic_latencies(5000)
    for v in values:
        histogram.observe(v)
    assert histogram.spilled
    assert histogram.samples == []                 # raw samples released
    assert len(histogram.sketch.buckets) < 1000    # log-bucketed, not per-sample
    assert histogram.count == 5000
    assert histogram.sum == pytest.approx(sum(values))
    assert histogram.min == min(values) and histogram.max == max(values)
    ordered = sorted(values)
    for q in (0.5, 0.9, 0.99):
        exact = ordered[round(q * (len(ordered) - 1))]
        assert abs(histogram.quantile(q) - exact) <= (
            DEFAULT_RELATIVE_ACCURACY * exact)


def test_histogram_spill_is_transparent_to_statistics():
    exact = Histogram("lat", retention=10_000)
    spilled = Histogram("lat", retention=32)
    for v in synthetic_latencies(1000):
        exact.observe(v)
        spilled.observe(v)
    assert not exact.spilled and spilled.spilled
    assert spilled.count == exact.count
    assert spilled.sum == exact.sum
    assert spilled.mean == pytest.approx(exact.mean)
    assert spilled.median == pytest.approx(exact.median, rel=0.011)


def test_histogram_merge_spills_when_combined_exceeds_retention():
    a = Histogram("lat", retention=100)
    b = Histogram("lat", retention=100)
    for v in synthetic_latencies(80, worker=0):
        a.observe(v)
    for v in synthetic_latencies(80, worker=1):
        b.observe(v)
    a.merge(b)
    assert a.spilled and a.count == 160
    assert a.samples == []


def test_merge_equals_merge_snapshot_when_spilled():
    # the --jobs bit-identity contract: shipping a spilled histogram as a
    # snapshot and re-merging reconstructs the exact same state as an
    # in-process merge
    def build(worker):
        metrics = Metrics(retention=64)
        for v in synthetic_latencies(300, worker=worker):
            metrics.observe("lat", v)
        metrics.inc("handshake.count", 300)
        return metrics

    via_merge, via_snapshot = Metrics(retention=64), Metrics(retention=64)
    for worker in range(3):
        via_merge.merge(build(worker))
        via_snapshot.merge_snapshot(build(worker).snapshot())
    assert via_merge.snapshot() == via_snapshot.snapshot()
    assert via_merge.histogram("lat").spilled


def test_merge_snapshot_empty_histograms():
    source = Metrics()
    source.histogram("lat")  # created, never observed
    target = Metrics()
    target.merge_snapshot(source.snapshot())
    histogram = target.histogram("lat")
    assert histogram.count == 0
    assert histogram.quantile(0.5) == 0.0
    assert target.snapshot()["histograms"]["lat"]["count"] == 0


def test_merge_snapshot_gauge_last_write_wins_ordering():
    target = Metrics()
    target.set("cwnd", 3)
    first, second = Metrics(), Metrics()
    first.set("cwnd", 7)
    second.set("cwnd", 11)
    target.merge_snapshot(first.snapshot())
    target.merge_snapshot(second.snapshot())
    assert target.value("cwnd") == 11   # last snapshot applied wins
    target.merge_snapshot(first.snapshot())
    assert target.value("cwnd") == 7


def test_streaming_snapshot_round_trips_sketch_and_reservoir():
    source = Metrics(retention=16)
    for v in synthetic_latencies(200):
        source.observe("lat", v)
    entry = source.snapshot()["histograms"]["lat"]
    assert entry["samples"] == []
    assert entry["streaming"]["observed"] == 200
    clone = Histogram.from_snapshot_entry("lat", entry, retention=16)
    assert clone.snapshot_entry() == entry


def test_synthetic_100k_campaign_streams_bit_identically_across_jobs():
    """Acceptance: 100k handshakes, O(1) memory, jobs=1 == jobs=4.

    Simulates the executor's two aggregation paths over the same 100k
    observations: one leader observing everything (jobs=1) vs four
    worker registries shipped as snapshots and merged in config order
    (jobs=4). Quantiles must agree bit-for-bit between the paths and
    with the exact sorted-list answer within the sketch's error bound.
    """
    retention = 4096
    per_worker = 25_000
    streams = [synthetic_latencies(per_worker, worker=w) for w in range(4)]

    serial = Metrics(retention=retention)
    for stream in streams:
        worker = Metrics(retention=retention)
        for v in stream:
            worker.observe("handshake.total", v)
        serial.merge(worker)

    parallel = Metrics(retention=retention)
    snapshots = []
    for stream in streams:
        worker = Metrics(retention=retention)
        for v in stream:
            worker.observe("handshake.total", v)
        snapshots.append(worker.snapshot())
    for snapshot in snapshots:
        parallel.merge_snapshot(snapshot)

    assert serial.snapshot() == parallel.snapshot()

    histogram = serial.histogram("handshake.total")
    assert histogram.count == 100_000
    assert histogram.spilled and histogram.samples == []
    all_values = sorted(v for stream in streams for v in stream)
    for q in (0.5, 0.9, 0.99):
        exact = all_values[round(q * (len(all_values) - 1))]
        assert abs(histogram.quantile(q) - exact) <= (
            DEFAULT_RELATIVE_ACCURACY * exact)


def test_null_metrics_swallows_everything():
    assert NULL_METRICS.enabled is False
    NULL_METRICS.inc("x")
    NULL_METRICS.set("y", 1)
    NULL_METRICS.observe("z", 2)
    NULL_METRICS.counter("x").inc(5)
    assert NULL_METRICS.counter("x").value == 0.0
    assert NULL_METRICS.names() == []
    assert NULL_METRICS.counters_with_prefix("x") == {}
    assert NULL_METRICS.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}}
