"""Metrics registry: instruments, prefix reads, merging, snapshots."""

import pytest

from repro.obs.metrics import NULL_METRICS, Metrics


def test_counter_accumulates_and_rejects_negative():
    metrics = Metrics()
    metrics.inc("tcp.retransmits")
    metrics.inc("tcp.retransmits", 2)
    assert metrics.value("tcp.retransmits") == 3
    with pytest.raises(ValueError):
        metrics.inc("tcp.retransmits", -1)


def test_gauge_last_write_wins():
    metrics = Metrics()
    metrics.set("cwnd", 10)
    metrics.set("cwnd", 4)
    assert metrics.value("cwnd") == 4


def test_histogram_statistics():
    metrics = Metrics()
    for value in (1.0, 2.0, 3.0, 10.0):
        metrics.observe("lat", value)
    histogram = metrics.histogram("lat")
    assert histogram.count == 4
    assert histogram.sum == 16.0
    assert histogram.mean == 4.0
    assert histogram.median == 2.5
    assert histogram.min == 1.0 and histogram.max == 10.0
    assert histogram.quantile(1.0) == 10.0
    assert histogram.quantile(0.0) == 1.0


def test_instruments_are_lazily_created_and_stable():
    metrics = Metrics()
    assert metrics.counter("a") is metrics.counter("a")
    assert metrics.names() == ["a"]


def test_value_raises_on_unknown_name():
    with pytest.raises(KeyError):
        Metrics().value("nope")


def test_counters_with_prefix_strips_prefix():
    metrics = Metrics()
    metrics.inc("cpu.client.libssl", 1.0)
    metrics.inc("cpu.client.libcrypto", 2.0)
    metrics.inc("cpu.server.libssl", 9.0)
    assert metrics.counters_with_prefix("cpu.client.") == {
        "libssl": 1.0, "libcrypto": 2.0}


def test_merge_folds_all_instrument_kinds():
    a, b = Metrics(), Metrics()
    a.inc("hits", 1)
    b.inc("hits", 2)
    b.set("cwnd", 7)
    b.observe("lat", 0.5)
    a.merge(b)
    assert a.value("hits") == 3
    assert a.value("cwnd") == 7
    assert a.histogram("lat").samples == [0.5]


def test_snapshot_shape_and_sorting():
    metrics = Metrics()
    metrics.inc("z", 1)
    metrics.inc("a", 1)
    metrics.observe("lat", 2.0)
    snapshot = metrics.snapshot()
    assert list(snapshot["counters"]) == ["a", "z"]
    assert snapshot["histograms"]["lat"]["count"] == 1
    assert set(snapshot["histograms"]["lat"]) == {
        "count", "sum", "min", "max", "mean", "median", "p99", "samples"}
    assert snapshot["histograms"]["lat"]["samples"] == [2.0]


def test_merge_snapshot_is_inverse_of_snapshot():
    source = Metrics()
    source.inc("hits", 3)
    source.set("cwnd", 9)
    source.observe("lat", 0.5)
    source.observe("lat", 1.5)

    via_merge, via_snapshot = Metrics(), Metrics()
    via_merge.inc("hits", 1)
    via_snapshot.inc("hits", 1)
    via_merge.merge(source)
    via_snapshot.merge_snapshot(source.snapshot())
    assert via_snapshot.snapshot() == via_merge.snapshot()
    assert via_snapshot.histogram("lat").samples == [0.5, 1.5]


def test_merge_snapshot_tolerates_presamples_snapshots():
    # snapshots cached before `samples` existed: counters/gauges restore,
    # histograms degrade silently instead of raising
    legacy = {"counters": {"hits": 2.0}, "gauges": {"cwnd": 4.0},
              "histograms": {"lat": {"count": 1, "sum": 1.0}}}
    metrics = Metrics()
    metrics.merge_snapshot(legacy)
    assert metrics.value("hits") == 2.0
    assert metrics.value("cwnd") == 4.0
    assert metrics.histogram("lat").samples == []


def test_null_metrics_swallows_everything():
    assert NULL_METRICS.enabled is False
    NULL_METRICS.inc("x")
    NULL_METRICS.set("y", 1)
    NULL_METRICS.observe("z", 2)
    NULL_METRICS.counter("x").inc(5)
    assert NULL_METRICS.counter("x").value == 0.0
    assert NULL_METRICS.names() == []
    assert NULL_METRICS.counters_with_prefix("x") == {}
    assert NULL_METRICS.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}}
