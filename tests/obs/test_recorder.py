"""Flight recorder: event stream, JSONL sink, live line, null impl."""

import io
import json

from repro.obs.recorder import NULL_RECORDER, FlightRecorder, walltime


def test_walltime_is_monotonic():
    a = walltime()
    b = walltime()
    assert b >= a


def test_events_are_stamped_and_ordered():
    recorder = FlightRecorder()
    first = recorder.event("campaign_begin", set="s", experiments=2)
    second = recorder.event("campaign_end", set="s")
    assert [e["event"] for e in recorder.events] == [
        "campaign_begin", "campaign_end"]
    assert first["experiments"] == 2
    assert 0.0 <= first["t"] <= second["t"]


def test_jsonl_file_is_written_incrementally(tmp_path):
    path = tmp_path / "log" / "flight.jsonl"
    recorder = FlightRecorder(path)
    recorder.event("campaign_begin", set="s")
    # flushed line-by-line: readable before close (crash-safe log)
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    recorder.task_start("k1", mode="serial", set_name="s", cached=False,
                        est_cost=1.23456789)
    recorder.task_finish("k1", mode="serial", set_name="s",
                         host_seconds=0.5, outcomes={"success": 3},
                         retransmits=2, cache_counters={"cache.hit": 1})
    recorder.close()
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert [e["event"] for e in events] == [
        "campaign_begin", "task_start", "task_finish"]
    start, finish = events[1], events[2]
    assert start["cached"] is False and start["est_cost"] == 1.2346
    assert finish["host_seconds"] == 0.5
    assert finish["outcomes"] == {"success": 3}
    assert finish["retransmits"] == 2
    assert finish["cache"] == {"cache.hit": 1}


def test_task_events_omit_empty_optional_fields():
    recorder = FlightRecorder()
    recorder.task_finish("k", mode="serial", set_name="s",
                         outcomes={}, retransmits=0, cache_counters={})
    (event,) = recorder.events
    assert "outcomes" not in event and "retransmits" not in event
    assert "cache" not in event


def test_live_progress_line_writes_and_clears():
    stream = io.StringIO()
    recorder = FlightRecorder(live=True, stream=stream)
    recorder.progress("small", 2, 10, elapsed=3.0, eta=12.0, hits=1)
    line = stream.getvalue()
    assert line.startswith("\r")
    assert "[small] 2/10" in line and "eta 12.0s" in line and "1 hits" in line
    recorder.close()
    assert stream.getvalue().endswith("\r")  # line cleared on close


def test_live_line_suppressed_when_not_live():
    stream = io.StringIO()
    recorder = FlightRecorder(live=False, stream=stream)
    recorder.progress("s", 1, 2, elapsed=1.0)
    assert stream.getvalue() == ""


def test_context_manager_closes_file(tmp_path):
    path = tmp_path / "flight.jsonl"
    with FlightRecorder(path) as recorder:
        recorder.event("campaign_begin", set="s")
    assert recorder._file is None
    assert len(path.read_text().splitlines()) == 1


def test_null_recorder_is_inert():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.event("x")
    NULL_RECORDER.task_start("k", mode="serial", set_name="s")
    NULL_RECORDER.task_finish("k", mode="serial", set_name="s")
    NULL_RECORDER.progress("s", 1, 2, elapsed=0.0)
    with NULL_RECORDER:
        pass
    assert NULL_RECORDER.events == ()


def test_heartbeat_rounds_and_renames_units():
    recorder = FlightRecorder()
    recorder.heartbeat(in_flight=37, completed=2048, hps=41234.567,
                      rss=96 * 1048576, shard=3)
    beat = recorder.events[-1]
    assert beat["event"] == "heartbeat"
    assert beat["in_flight"] == 37
    assert beat["completed"] == 2048
    assert beat["hps"] == 41234.6           # one decimal is plenty
    assert beat["rss_mb"] == 96.0           # bytes in, MB in the log
    assert beat["shard"] == 3


def test_heartbeat_omits_what_the_emitter_cannot_observe():
    recorder = FlightRecorder()
    recorder.heartbeat(completed=10)        # no rss/hps/in_flight available
    beat = recorder.events[-1]
    assert beat["completed"] == 10
    for absent in ("in_flight", "hps", "rss_mb"):
        assert absent not in beat
    NULL_RECORDER.heartbeat(completed=10)   # inert, like every other event
    assert NULL_RECORDER.events == ()
