"""pqtls-bench-check: flattening, direction, bands, host gating, CLI."""

import json
from pathlib import Path

import pytest

from repro.obs import benchcheck
from repro.obs.benchcheck import (
    OK,
    REGRESSION,
    SKIPPED,
    check_pair,
    direction,
    flatten,
    main,
    tolerance_for,
)
from repro.obs.hostmeta import host_metadata

REPO = Path(__file__).resolve().parents[2]


def payload(**overrides):
    base = {
        "host": host_metadata(),
        "set": "bench-grid",
        "serial": {"jobs": 1, "cold_s": 2.0, "warm_s": 0.1, "experiments": 6},
        "parallel": {"jobs": 2, "cold_s": 1.0, "warm_s": 0.1,
                     "serial_fallback": False},
        "speedup_cold": 2.0,
    }
    base.update(overrides)
    return base


def row_of(rows, metric):
    (row,) = [r for r in rows if r["metric"] == metric]
    return row


# ---------------------------------------------------------------- pieces

def test_flatten_excludes_host_and_non_numerics():
    flat = flatten({"host": {"cpu_count": 8}, "set": "x",
                    "serial": {"cold_s": 2.0, "ok": True},
                    "speedup_cold": 1.5})
    assert flat == {"serial.cold_s": 2.0, "speedup_cold": 1.5}


def test_direction_from_metric_name():
    assert direction("speedup_cold") == 1
    assert direction("kems.kyber512.speedup") == 1
    assert direction("serial.cold_s") == -1
    assert direction("serial.experiments") == 0
    assert direction("parallel.jobs") == 0


def test_tolerance_file_patterns_win_over_defaults():
    bands = [("serial.*", 0.05)]
    assert tolerance_for("serial.cold_s", bands) == 0.05
    assert tolerance_for("parallel.cold_s", bands) == 1.00  # default *_s
    assert tolerance_for("speedup_cold", bands) == 0.30     # default speedup
    assert tolerance_for("experiments", bands) is None


# ------------------------------------------------------------ check_pair

def test_identical_payloads_pass():
    rows, mismatches = check_pair(payload(), payload())
    assert mismatches == []
    assert all(row["status"] != REGRESSION for row in rows)
    assert row_of(rows, "serial.cold_s")["status"] == OK
    assert row_of(rows, "speedup_cold")["status"] == OK


def test_seconds_regression_past_band_fails():
    fresh = payload()
    fresh["serial"] = dict(fresh["serial"], cold_s=4.2)  # +110% vs band 100%
    rows, _ = check_pair(payload(), fresh)
    row = row_of(rows, "serial.cold_s")
    assert row["status"] == REGRESSION
    assert row["regression"] == pytest.approx(1.1)


def test_improvement_never_fails():
    fresh = payload()
    fresh["serial"] = dict(fresh["serial"], cold_s=0.2)
    fresh["speedup_cold"] = 5.0
    rows, _ = check_pair(payload(), fresh)
    assert row_of(rows, "serial.cold_s")["status"] == OK
    assert row_of(rows, "speedup_cold")["status"] == OK


def test_speedup_drop_past_band_fails():
    rows, _ = check_pair(payload(), payload(speedup_cold=1.2))  # -40%
    assert row_of(rows, "speedup_cold")["status"] == REGRESSION


def test_counts_are_informational_not_gated():
    fresh = payload()
    fresh["serial"] = dict(fresh["serial"], experiments=60)
    rows, _ = check_pair(payload(), fresh)
    assert row_of(rows, "serial.experiments")["status"] == "info"


def test_cpu_mismatch_skips_only_parallel_metrics():
    fresh = payload(speedup_cold=1.0)                   # would fail...
    fresh["serial"] = dict(fresh["serial"], cold_s=9.0)  # ...and so would this
    fresh["host"] = dict(fresh["host"], cpu_count=99)
    rows, mismatches = check_pair(payload(), fresh)
    assert mismatches == []                              # still comparable
    speedup = row_of(rows, "speedup_cold")
    assert speedup["status"] == SKIPPED
    assert speedup["note"] == "cpu topology differs"
    assert row_of(rows, "parallel.cold_s")["status"] == SKIPPED
    assert row_of(rows, "serial.cold_s")["status"] == REGRESSION


def test_serial_fallback_on_either_side_skips_speedups():
    baseline = payload()
    baseline["parallel"] = dict(baseline["parallel"], serial_fallback=True)
    rows, _ = check_pair(baseline, payload(speedup_cold=0.5))
    row = row_of(rows, "speedup_cold")
    assert row["status"] == SKIPPED and row["note"] == "serial fallback"


def test_fingerprint_mismatch_reported():
    fresh = payload()
    fresh["host"] = dict(fresh["host"], kernels="ref")
    _, mismatches = check_pair(payload(), fresh)
    assert mismatches == ["kernels"]
    _, mismatches = check_pair(payload(), fresh, ignore_host=True)
    assert mismatches == []


def test_missing_host_block_is_a_fingerprint_mismatch():
    legacy = payload()
    del legacy["host"]
    _, mismatches = check_pair(legacy, payload())
    assert set(mismatches) == {"kernels", "machine", "python_major"}


def test_missing_metric_is_informational():
    fresh = payload()
    del fresh["speedup_cold"]
    rows, _ = check_pair(payload(), fresh)
    row = row_of(rows, "speedup_cold")
    assert row["status"] == "info" and row["note"] == "missing in fresh"


# ------------------------------------------------------------------- CLI

def write_pair(tmp_path, baseline, fresh, name="BENCH_x.json"):
    base_dir, fresh_dir = tmp_path / "base", tmp_path / "fresh"
    base_dir.mkdir(exist_ok=True)
    fresh_dir.mkdir(exist_ok=True)
    (base_dir / name).write_text(json.dumps(baseline))
    (fresh_dir / name).write_text(json.dumps(fresh))
    return ["--baseline-dir", str(base_dir), "--fresh-dir", str(fresh_dir),
            "--tolerances", str(tmp_path / "absent.json")]


def test_main_passes_on_equal_payloads(tmp_path, capsys):
    assert main(write_pair(tmp_path, payload(), payload())) == 0
    assert "no regressions" in capsys.readouterr().err


def test_main_fails_on_perturbed_fixture(tmp_path, capsys):
    fresh = payload(speedup_cold=1.0)
    assert main(write_pair(tmp_path, payload(), fresh)) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_main_refuses_host_mismatch(tmp_path, capsys):
    fresh = payload()
    fresh["host"] = dict(fresh["host"], kernels="ref")
    argv = write_pair(tmp_path, payload(), fresh)
    assert main(argv) == 2
    assert "refusing to compare" in capsys.readouterr().err
    assert main([*argv, "--ignore-host"]) == 0


def test_main_refuses_missing_baseline(tmp_path, capsys):
    argv = write_pair(tmp_path, payload(), payload())
    assert main([*argv, "BENCH_missing.json"]) == 2
    assert "no committed baseline" in capsys.readouterr().err


def test_main_reads_tolerances_file(tmp_path):
    fresh = payload()
    fresh["serial"] = dict(fresh["serial"], cold_s=2.3)   # +15%
    argv = write_pair(tmp_path, payload(), fresh)
    assert main(argv) == 0                                # default band 100%
    bands = tmp_path / "bands.json"
    bands.write_text(json.dumps({"tolerances": {"serial.*": 0.1}}))
    argv[argv.index(str(tmp_path / "absent.json"))] = str(bands)
    assert main(argv) == 1


def test_committed_baselines_pass_against_themselves(tmp_path, monkeypatch):
    """The in-repo gate: baselines vs themselves under the repo bands."""
    out = REPO / "benchmarks" / "out"
    baselines = sorted(out.glob("BENCH_*.json"))
    assert len(baselines) >= 3                 # campaign, crypto, metrics
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir()
    for path in baselines:
        (fresh_dir / path.name).write_text(path.read_text())
    code = main(["--baseline-dir", str(out), "--fresh-dir", str(fresh_dir),
                 "--tolerances",
                 str(REPO / "benchmarks" / "bench_tolerances.json")])
    assert code == 0


def test_default_tolerances_cover_all_gated_metrics():
    """Every directional metric in the committed baselines has a band."""
    for path in sorted((REPO / "benchmarks" / "out").glob("BENCH_*.json")):
        for metric in benchcheck.flatten(json.loads(path.read_text())):
            if direction(metric) != 0:
                assert tolerance_for(metric, []) is not None, metric


# ------------------------------------------- bench_campaign payload shape

def _bench_campaign_module():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_campaign", REPO / "benchmarks" / "bench_campaign.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


SERIAL_PASS = {"jobs": 1, "cold_s": 2.0, "warm_s": 0.2,
               "record_stage_s": 1.8, "experiments": 6}


def test_build_payload_computes_speedups_on_a_real_parallel_run():
    bench = _bench_campaign_module()
    parallel = {"jobs": 2, "cold_s": 1.0, "warm_s": 0.2,
                "record_stage_s": 0.8, "experiments": 6}
    built = bench.build_payload("bench-grid", SERIAL_PASS, parallel)
    assert built["speedup_cold"] == 2.0
    assert built["speedup_record_stage"] == 2.25
    assert "serial_fallback" not in built["parallel"]


def test_build_payload_omits_speedups_on_serial_fallback():
    """A 1-CPU host's baseline must not pin speedup_cold at a fake 1.0."""
    bench = _bench_campaign_module()
    parallel = {"jobs": 1, "serial_fallback": True,
                "serial_fallback_reason": "1 CPU"}
    built = bench.build_payload("bench-grid", SERIAL_PASS, parallel)
    assert "speedup_cold" not in built
    assert "speedup_record_stage" not in built
    # the fallback block carries no cloned serial timings
    assert "cold_s" not in built["parallel"]


def test_fallback_baseline_cleanly_skips_against_multicore_fresh(tmp_path,
                                                                 capsys):
    """The CI shape: 1-CPU baseline, genuine -j2 fresh run -> no gate."""
    bench = _bench_campaign_module()
    baseline = bench.build_payload(
        "bench-grid", SERIAL_PASS,
        {"jobs": 1, "serial_fallback": True, "serial_fallback_reason": "1 CPU"})
    fresh = bench.build_payload(
        "bench-grid", SERIAL_PASS,
        {"jobs": 2, "cold_s": 1.0, "warm_s": 0.2, "record_stage_s": 0.8,
         "experiments": 6})
    assert main(write_pair(tmp_path, baseline, fresh)) == 0
    err = capsys.readouterr().err
    assert "missing in baseline" in err and "no regressions" in err


def test_rss_probes_report_plausible_linux_numbers():
    from repro.obs.hostmeta import peak_rss_bytes, rss_bytes

    rss = rss_bytes()
    peak = peak_rss_bytes()
    # both probes may be None off-Linux; here they must agree on sanity
    if rss is not None:
        assert 1 << 20 < rss < 1 << 40       # between 1 MB and 1 TB
    if rss is not None and peak is not None:
        assert peak >= rss // 2              # peak tracks the high-water mark
