"""Streaming instruments: sketch accuracy, reservoir determinism, merges."""

import pytest

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    ReservoirSample,
    priority,
)


def synthetic_latencies(n, worker=0):
    """Deterministic positive 'latency' stream with a heavy-ish tail."""
    out = []
    for i in range(n):
        x = (i * 2654435761 + worker * 97) % 10_000
        out.append(0.001 + (x / 10_000.0) ** 3 * 0.25)
    return out


def exact_quantile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]


# -- QuantileSketch ----------------------------------------------------------

def test_sketch_relative_error_bound():
    values = synthetic_latencies(50_000)
    sketch = QuantileSketch()
    for v in values:
        sketch.add(v)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        exact = exact_quantile(values, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) <= DEFAULT_RELATIVE_ACCURACY * abs(exact)


def test_sketch_handles_zero_and_negative_values():
    sketch = QuantileSketch()
    for v in (-4.0, -1.0, 0.0, 0.0, 1.0, 4.0):
        sketch.add(v)
    assert sketch.count == 6
    assert sketch.quantile(0.0) == pytest.approx(-4.0, rel=0.011)
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(1.0) == pytest.approx(4.0, rel=0.011)


def test_sketch_empty_returns_zero():
    assert QuantileSketch().quantile(0.5) == 0.0


def test_sketch_merge_matches_single_stream_bitwise():
    merged, single = QuantileSketch(), QuantileSketch()
    parts = [QuantileSketch() for _ in range(3)]
    for worker, part in enumerate(parts):
        for v in synthetic_latencies(1000, worker=worker):
            part.add(v)
            single.add(v)
    for part in parts:
        merged.merge(part)
    assert merged.state() == single.state()
    assert merged.count == single.count


def test_sketch_merge_is_associative_and_commutative():
    def build(worker):
        sketch = QuantileSketch()
        for v in synthetic_latencies(500, worker=worker):
            sketch.add(v)
        return sketch

    a_bc = build(0)
    bc = build(1)
    bc.merge(build(2))
    a_bc.merge(bc)

    ab_c = build(0)
    ab_c.merge(build(1))
    ab_c.merge(build(2))

    cba = build(2)
    cba.merge(build(1))
    cba.merge(build(0))

    assert a_bc.state() == ab_c.state() == cba.state()


def test_sketch_merge_rejects_mismatched_accuracy():
    with pytest.raises(ValueError):
        QuantileSketch(relative_accuracy=0.01).merge(
            QuantileSketch(relative_accuracy=0.02))


def test_sketch_collapse_bounds_memory_and_keeps_high_quantiles():
    sketch = QuantileSketch(max_buckets=32)
    values = [1.5 ** i for i in range(-40, 41)]  # ~81 distinct buckets
    for v in values:
        sketch.add(v)
    assert len(sketch.buckets) <= 32
    assert sketch.count == len(values)
    # the top of the distribution survives collapse unscathed
    assert sketch.quantile(1.0) == pytest.approx(max(values), rel=0.011)


def test_sketch_state_round_trip():
    sketch = QuantileSketch()
    for v in (-2.0, 0.0, 0.5, 3.0, 3.0):
        sketch.add(v)
    clone = QuantileSketch.from_state(sketch.state())
    assert clone.state() == sketch.state()
    assert clone.count == sketch.count
    assert clone.quantile(0.9) == sketch.quantile(0.9)


# -- ReservoirSample ---------------------------------------------------------

def test_priority_is_deterministic_and_index_sensitive():
    assert priority(3, 1.25) == priority(3, 1.25)
    assert priority(3, 1.25) != priority(4, 1.25)
    assert priority(3, 1.25) != priority(3, 1.5)


def test_reservoir_keeps_bottom_k_of_union():
    reservoir = ReservoirSample(k=4)
    for i in range(100):
        reservoir.add(i, float(i))
    expected = sorted((priority(i, float(i)), float(i)) for i in range(100))[:4]
    assert reservoir.entries == expected


def test_reservoir_merge_is_associative_and_order_independent():
    def build(worker):
        reservoir = ReservoirSample(k=8)
        for i, v in enumerate(synthetic_latencies(200, worker=worker)):
            reservoir.add(i, v)
        return reservoir

    left = build(0)
    right = build(1)
    right.merge(build(2))
    left.merge(right)

    other = build(2)
    other.merge(build(0))
    other.merge(build(1))

    assert left.entries == other.entries


def test_reservoir_merge_matches_single_process_feed():
    # sharded feed at each shard's own indices == merging the shards
    shards = [ReservoirSample(k=16) for _ in range(4)]
    union = ReservoirSample(k=16)
    for worker, shard in enumerate(shards):
        for i, v in enumerate(synthetic_latencies(100, worker=worker)):
            shard.add(i, v)
    for shard in shards:
        union.merge(shard)
    expected = sorted(
        entry for shard in shards for entry in shard.entries)[:16]
    assert union.entries == expected


def test_reservoir_state_round_trip():
    reservoir = ReservoirSample(k=8)
    for i in range(50):
        reservoir.add(i, i * 0.1)
    clone = ReservoirSample.from_state(reservoir.state(), k=8)
    assert clone.entries == reservoir.entries
    assert clone.values() == reservoir.values()


def test_reservoir_rejects_bad_k():
    with pytest.raises(ValueError):
        ReservoirSample(k=0)


# -- traffic-scale shard merges ----------------------------------------------
# The traffic engine streams ~1M latencies through per-shard sketches and
# merges them on the leader; these tests pin the contract at that scale.

def test_sketch_three_way_shard_merge_at_traffic_scale():
    values = synthetic_latencies(100_000)
    single = QuantileSketch()
    for v in values:
        single.add(v)

    shards = []
    for i in range(3):                      # contiguous time-slices
        shard = QuantileSketch()
        for v in values[i * 40_000:(i + 1) * 40_000]:
            shard.add(v)
        shards.append(shard)
    merged = QuantileSketch()
    for shard in shards:
        merged.merge(shard)

    # sharding must be invisible: identical state, not just close numbers
    assert merged.state() == single.state()
    assert merged.count == 100_000
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = exact_quantile(values, q)
        assert merged.quantile(q) == pytest.approx(
            exact, rel=DEFAULT_RELATIVE_ACCURACY)  # <= 1% by construction


def test_reservoir_shard_merge_order_is_invisible_at_traffic_scale():
    shards = []
    base = 0
    for worker in range(4):
        shard = ReservoirSample()
        values = synthetic_latencies(25_000, worker=worker)
        for offset, v in enumerate(values):
            shard.add(base + offset, v)     # global observation indices
        base += len(values)
        shards.append(shard)

    def merge_in(order):
        merged = ReservoirSample()
        for i in order:
            merged.merge(shards[i])
        return merged

    forward = merge_in([0, 1, 2, 3])
    scrambled = merge_in([2, 0, 3, 1])
    assert forward.state() == scrambled.state()
    assert forward.values() == scrambled.values()
    assert len(forward.values()) == forward.k
