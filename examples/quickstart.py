#!/usr/bin/env python3
"""Quickstart: one post-quantum TLS 1.3 handshake, end to end.

Runs a hybrid (P-256 + Kyber-512) key agreement with a composite
(P-256 ECDSA + Dilithium-2) certificate through the simulated 3-node
testbed and prints everything the paper's tap would record.

    python examples/quickstart.py [kem] [sig]
"""

import sys

from repro.crypto.drbg import Drbg
from repro.netsim.testbed import Testbed
from repro.tls.certs import make_server_credentials


def main() -> None:
    kem = sys.argv[1] if len(sys.argv) > 1 else "p256_kyber512"
    sig = sys.argv[2] if len(sys.argv) > 2 else "p256_dilithium2"

    print(f"# PQ-TLS 1.3 handshake: KA={kem}  SA={sig}")
    print("# generating credentials (real from-scratch crypto) ...")
    drbg = Drbg("quickstart")
    certificate, secret_key, trust_store = make_server_credentials(sig, drbg)
    print(f"#   leaf certificate: {len(certificate.encode())} bytes "
          f"({sig} public key + CA signature)")

    testbed = Testbed(kem, sig, certificate, secret_key, trust_store)
    trace = testbed.run_handshake()

    print()
    print("wire-visible phases (the paper's Figure 1):")
    print(f"  part A (ClientHello -> ServerHello) : {trace.part_a * 1e3:8.3f} ms")
    print(f"  part B (ServerHello -> Client Fin)  : {trace.part_b * 1e3:8.3f} ms")
    print(f"  total handshake                     : {trace.total * 1e3:8.3f} ms")
    print()
    print("data volumes (Ethernet+IP+TCP included, as in Table 2):")
    print(f"  client sent: {trace.client_wire_bytes:6d} B in {trace.client_packets} packets")
    print(f"  server sent: {trace.server_wire_bytes:6d} B in {trace.server_packets} packets")
    print()
    print("server flights on the wire:", " | ".join(dict.fromkeys(trace.flight_labels)))
    print()
    print("CPU per handshake (simulated Xeon D-1518, by library):")
    for host, cpu in (("server", trace.server_cpu), ("client", trace.client_cpu)):
        total = sum(cpu.values())
        shares = ", ".join(f"{lib} {100 * v / total:.0f}%"
                           for lib, v in sorted(cpu.items(), key=lambda kv: -kv[1]))
        print(f"  {host}: {total * 1e3:6.2f} ms  ({shares})")


if __name__ == "__main__":
    main()
