#!/usr/bin/env python3
"""Hybrid-migration planner: what does going quantum-safe cost *you*?

The paper's recommendation (§6) is to deploy hybrids now. Given a target
NIST level and your network profile, this script compares your current
classical configuration against the hybrid and pure-PQ options and prints
the latency/bytes deltas — the numbers a deployment review would ask for.

    python examples/migration_planner.py [1|3|5] [none|5g|lte-m]
"""

import sys

from repro.core.experiment import ExperimentConfig, run_experiment

PLANS = {
    1: {
        "classical": ("x25519", "rsa:2048"),
        "hybrid": ("p256_kyber512", "p256_dilithium2"),
        "pure-pq": ("kyber512", "dilithium2"),
    },
    3: {
        "classical": ("p384", "rsa:3072"),
        "hybrid": ("p384_kyber768", "p384_dilithium3"),
        "pure-pq": ("kyber768", "dilithium3"),
    },
    5: {
        "classical": ("p521", "rsa:4096"),
        "hybrid": ("p521_kyber1024", "p521_dilithium5"),
        "pure-pq": ("kyber1024", "dilithium5"),
    },
}


def main() -> None:
    level = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    scenario = sys.argv[2] if len(sys.argv) > 2 else "none"
    plan = PLANS[level]
    print(f"NIST level {level}, network scenario '{scenario}'")
    print(f"{'option':<10} {'KA':<15} {'SA':<16} {'median':>9} {'bytes':>7} {'delta':>8}")
    baseline = None
    for option, (kem, sig) in plan.items():
        result = run_experiment(ExperimentConfig(kem=kem, sig=sig, scenario=scenario,
                                                 max_samples=101))
        volume = result.client_bytes + result.server_bytes
        if baseline is None:
            baseline = result.total_median
            delta = "--"
        else:
            delta = f"{(result.total_median - baseline) * 1e3:+.2f} ms"
        print(f"{option:<10} {kem:<15} {sig:<16} "
              f"{result.total_median * 1e3:7.2f} ms {volume:>7d} {delta:>8}")
    print()
    if level == 1:
        print("Level 1: the hybrid costs almost nothing over classical —")
        print("the paper's case for migrating today (store-now-decrypt-later).")
    else:
        print(f"Level {level}: the classical half *is* the bottleneck; pure PQ")
        print("is faster than both classical and hybrid (paper §5.1/§6).")


if __name__ == "__main__":
    main()
