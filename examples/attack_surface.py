#!/usr/bin/env python3
"""PQ TLS as an attack surface (the paper's §5.5).

Quantifies the two asymmetries an attacker can lean on:

1. computation skew — how much more CPU a handshake costs the server
   than the client (algorithmic-complexity DoS), and
2. amplification — how many bytes a spoofed ClientHello makes the
   server emit (reflection DDoS; QUIC caps this factor at 3).

    python examples/attack_surface.py
"""

from repro.core.experiment import ExperimentConfig, run_experiment

PAIRS = [
    ("x25519", "rsa:2048"),
    ("kyber512", "dilithium2"),
    ("kyber512", "falcon512"),
    ("bikel1", "dilithium2"),
    ("kyber512", "sphincs128"),
    ("x25519", "sphincs256"),
]


def main() -> None:
    print(f"{'KA':<10} {'SA':<12} {'srv CPU':>8} {'cli CPU':>8} {'skew':>6} "
          f"{'srv B':>7} {'cli B':>6} {'amp':>6}")
    worst_skew = worst_amp = (None, 0.0)
    for kem, sig in PAIRS:
        result = run_experiment(ExperimentConfig(kem=kem, sig=sig, profiling=True))
        skew = result.server_cpu_ms / result.client_cpu_ms
        amp = result.server_bytes / result.client_bytes
        print(f"{kem:<10} {sig:<12} {result.server_cpu_ms:>6.2f}ms "
              f"{result.client_cpu_ms:>6.2f}ms {skew:>5.1f}x "
              f"{result.server_bytes:>7d} {result.client_bytes:>6d} {amp:>5.1f}x")
        if skew > worst_skew[1]:
            worst_skew = (f"{kem}+{sig}", skew)
        if amp > worst_amp[1]:
            worst_amp = (f"{kem}+{sig}", amp)
    print()
    print(f"worst computation skew : {worst_skew[1]:.1f}x ({worst_skew[0]})")
    print(f"worst amplification    : {worst_amp[1]:.1f}x ({worst_amp[0]}) — QUIC caps at 3x")
    print()
    print("The main lever in both attack scenarios is the signature choice:")
    print("SPHINCS+ signing burns server CPU, and its 17-50 kB signatures make")
    print("the certificate flight a potent reflection payload.")


if __name__ == "__main__":
    main()
