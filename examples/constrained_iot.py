#!/usr/bin/env python3
"""Choosing a PQ algorithm for a constrained link (the paper's §5.4).

An IoT fleet talks over LTE-M (10 % loss, 200 ms RTT, 1 Mbit/s — the
paper's 15 km scenario). This script compares candidate KA/SA pairs in
that environment, plus the 1 s-RTT satellite-ish worst case where large
handshakes overflow the initial TCP congestion window.

    python examples/constrained_iot.py
"""

from repro.core.experiment import ExperimentConfig, run_experiment

CANDIDATES = [
    # (ka, sa, why it is on the shortlist)
    ("x25519", "rsa:2048", "today's classical baseline"),
    ("kyber512", "falcon512", "smallest PQ keys+signatures"),
    ("kyber512", "dilithium2", "NIST's primary picks"),
    ("hqc128", "dilithium2", "4th-round code-based KA"),
    ("kyber512", "sphincs128", "conservative hash-based SA"),
]


def main() -> None:
    print("Scenario: LTE-M (10% loss, 200 ms RTT, 1 Mbit/s) and 1 s-RTT link")
    print(f"{'KA':<10} {'SA':<12} {'LTE-M med':>10} {'1s-RTT':>8} {'bytes':>7}  note")
    for kem, sig, note in CANDIDATES:
        lte = run_experiment(ExperimentConfig(kem=kem, sig=sig, scenario="lte-m",
                                              max_samples=101))
        sat = run_experiment(ExperimentConfig(kem=kem, sig=sig, scenario="high-delay"))
        volume = lte.client_bytes + lte.server_bytes
        rtts = round(sat.total_median)
        print(f"{kem:<10} {sig:<12} {lte.total_median * 1e3:8.0f} ms "
              f"{rtts:>5d} RTT {volume:>7d}  {note}")
    print()
    print("Reading the table like the paper does:")
    print(" - loss alone is mild; bandwidth charges you per byte, so the")
    print("   compact Kyber/Falcon pair wins on LTE-M (paper §5.4 finding)")
    print(" - at 1 s RTT, any server flight beyond the initial congestion")
    print("   window costs whole extra round trips (SPHINCS+: 2+ RTTs)")
    print(" - tune initcwnd if you must ship large PQ certificates")


if __name__ == "__main__":
    main()
