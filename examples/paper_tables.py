#!/usr/bin/env python3
"""Regenerate any of the paper's tables/figures from the command line.

Thin veneer over the ``pqtls-experiment`` CLI:

    python examples/paper_tables.py table2
    python examples/paper_tables.py table3 table4 figure3 figure4 section55
    python examples/paper_tables.py all

Artifacts land in ``out/`` (override with -o). The first cold run records
real handshakes (slow for SPHINCS+); later runs reuse ``.cache/``.
"""

import sys

from repro.core.cli import ARTIFACTS, main


def run() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        return 2
    names = ARTIFACTS if args == ["all"] else args
    return main(["--evaluate", *names])


if __name__ == "__main__":
    raise SystemExit(run())
