"""Ref-vs-fast crypto kernel microbenchmarks (`repro.crypto.kernels`).

Times each algorithm family under both kernel modes in one process
(``kernels.override`` rebinds every switch point) and writes the wall
times plus speedups to ``benchmarks/out/BENCH_crypto.json``, so the
fast-kernel trajectory accumulates run over run next to
``BENCH_campaign.json``.

Not a paper artefact: these numbers are host wall clock of *this*
library, which is exactly why the simulated handshake clock uses the
calibrated cost model instead (DESIGN.md §1). KEM entries time the full
keygen/encaps/decaps roundtrip (the cold record-stage shape); signature
entries time sign+verify only (certificate keygen is one-time and, for
RSA, deliberately not kernelised). SPHINCS+ is the exception: its row
times *keygen*, which walks the identical thash path (WOTS chains +
treehash) as signing at ~1/20 the wall clock — a single 128f signature
is ~8 s of pure-Python hashing in either mode, outside the CI budget.
The ``aggregate`` block sums the KEM/SIG rows — the acceptance gate is
aggregate speedup >= 2x.

Usage::

    PYTHONPATH=src python benchmarks/bench_crypto.py [--reps N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.crypto import kernels
from repro.crypto.drbg import Drbg
from repro.obs.hostmeta import host_metadata
from repro.pqc.registry import get_kem, get_sig

OUT_DEFAULT = Path(__file__).parent / "out" / "BENCH_crypto.json"

_MESSAGE = b"bench message"


def _kem_roundtrip(name):
    kem = get_kem(name)

    def run():
        drbg = Drbg(b"bench-kem-" + name.encode())
        pk, sk = kem.keygen(drbg)
        ct, ss = kem.encaps(pk, drbg)
        assert kem.decaps(sk, ct) == ss
    return run


def _sig_cycle(name):
    sig = get_sig(name)
    pk, sk = sig.keygen(Drbg(b"bench-sig-" + name.encode()))

    def run():
        drbg = Drbg(b"bench-sign-" + name.encode())
        s = sig.sign(sk, _MESSAGE, drbg)
        assert sig.verify(pk, _MESSAGE, s)
    return run


def _sig_keygen(name):
    sig = get_sig(name)

    def run():
        sig.keygen(Drbg(b"bench-kg-" + name.encode()))
    return run


def _aes_gcm_record():
    from repro.crypto.gcm import AesGcm

    def run():
        gcm = AesGcm(b"k" * 16)
        for seq in range(8):
            gcm.encrypt(seq.to_bytes(12, "big"), b"x" * 4096, b"aad")
    return run


def _haraka512():
    from repro.crypto import haraka

    def run():
        for i in range(256):
            haraka.haraka512(bytes([i]) * 64)
    return run


def _p256_scalar_mult():
    from repro.crypto.ec.curves import P256

    ks = [Drbg(b"bench-ec").randint(1, P256.n - 1) for _ in range(8)]

    def run():
        for k in ks:
            P256.scalar_mult(k)
    return run


def _gf256_poly_mul():
    from repro.pqc.hqc import gf256

    d = Drbg(b"bench-gf")
    a = [d.randint(0, 255) for _ in range(64)]
    b = [d.randint(0, 255) for _ in range(64)]

    def run():
        for _ in range(64):
            gf256.poly_mul(a, b)
    return run


# (section, json row name, builder, algorithm, best-of reps)
BENCHES = [
    ("kems", "kyber512", _kem_roundtrip, "kyber512", 3),
    ("kems", "kyber768", _kem_roundtrip, "kyber768", 3),
    ("kems", "kyber90s512", _kem_roundtrip, "kyber90s512", 3),
    ("kems", "kyber90s768", _kem_roundtrip, "kyber90s768", 3),
    ("kems", "hqc128", _kem_roundtrip, "hqc128", 3),
    ("kems", "p256_kyber512", _kem_roundtrip, "p256_kyber512", 3),
    ("sigs", "dilithium2", _sig_cycle, "dilithium2", 3),
    ("sigs", "dilithium2_aes", _sig_cycle, "dilithium2_aes", 3),
    ("sigs", "dilithium5_aes", _sig_cycle, "dilithium5_aes", 3),
    ("sigs", "rsa:2048", _sig_cycle, "rsa:2048", 3),
    ("sigs", "sphincs128_keygen", _sig_keygen, "sphincs128", 2),
    ("primitives", "aes_gcm_record_4k", _aes_gcm_record, None, 3),
    ("primitives", "haraka512", _haraka512, None, 3),
    ("primitives", "p256_scalar_mult", _p256_scalar_mult, None, 3),
    ("primitives", "gf256_poly_mul", _gf256_poly_mul, None, 3),
]


# the two former ~1x stragglers: CI uploads their flame SVGs next to the
# fresh bench JSON so any future regression comes with its own profile
FLAME_TARGETS = [
    ("flame_hqc128_decaps.svg", _kem_roundtrip, "hqc128"),
    ("flame_dilithium2_sign.svg", _sig_cycle, "dilithium2"),
]


def write_flames(flame_dir: Path, seconds: float = 1.0) -> list[Path]:
    """Profile the straggler hot paths (fast kernels) into flame SVGs."""
    from repro.obs.flame import write_flame_svg
    from repro.obs.profiler import SamplingProfiler

    flame_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, builder, algorithm in FLAME_TARGETS:
        with kernels.override("fast"):
            fn = builder(algorithm)
            with SamplingProfiler(interval=0.001) as profiler:
                deadline = time.perf_counter() + seconds
                while time.perf_counter() < deadline:
                    fn()
        path = flame_dir / filename
        write_flame_svg(profiler.to_tracer(), "host-cpu", path,
                        title=filename.removesuffix(".svg"))
        print(f"[artifact] {path} ({profiler.sample_count} samples)")
        written.append(path)
    return written


def _time_best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_one(builder, algorithm, reps: int) -> dict:
    """Best-of-``reps`` wall time under each kernel mode.

    The builder runs once per mode (outside the timed region) so keygen
    and memo-table construction don't pollute the measurement; the
    reference mode goes first so fast-side caches can't warm it up.
    """
    times = {}
    for mode in ("ref", "fast"):
        with kernels.override(mode):
            fn = builder(algorithm) if algorithm is not None else builder()
            times[mode] = _time_best(fn, reps)
    return {
        "ref_s": round(times["ref"], 4),
        "fast_s": round(times["fast"], 4),
        "speedup": round(times["ref"] / times["fast"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=None,
                        help="override best-of reps for every entry")
    parser.add_argument("--out", type=Path, default=OUT_DEFAULT)
    parser.add_argument("--flame-dir", type=Path, default=None,
                        help="also write flame SVGs of the hqc128-decaps and "
                             "dilithium2-sign hot paths into this directory")
    parser.add_argument("--flame-seconds", type=float, default=1.0,
                        help="profiling window per flame target (default 1.0)")
    args = parser.parse_args(argv)

    report: dict = {
        "host": host_metadata(),
        "kems": {}, "sigs": {}, "primitives": {},
    }
    agg_ref = agg_fast = 0.0
    for section, name, builder, algorithm, reps in BENCHES:
        entry = bench_one(builder, algorithm, args.reps or reps)
        report[section][name] = entry
        if section in ("kems", "sigs"):
            agg_ref += entry["ref_s"]
            agg_fast += entry["fast_s"]
        print(f"{section:10s} {name:18s} ref {entry['ref_s']:8.4f}s"
              f"  fast {entry['fast_s']:8.4f}s  {entry['speedup']:6.2f}x")
    report["aggregate"] = {
        "ref_s": round(agg_ref, 4),
        "fast_s": round(agg_fast, 4),
        "speedup": round(agg_ref / agg_fast, 2),
    }
    print(f"aggregate (kems+sigs): ref {agg_ref:.3f}s fast {agg_fast:.3f}s "
          f"= {report['aggregate']['speedup']}x")

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[artifact] {args.out}")
    if args.flame_dir is not None:
        write_flames(args.flame_dir, args.flame_seconds)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
