"""Microbenchmarks of the from-scratch crypto (wall time of *this* library).

Not a paper artefact: these time our pure-Python implementations, which is
exactly why the simulated clock uses the calibrated cost model instead
(DESIGN.md §1). Useful for tracking implementation regressions.
"""

import pytest

from repro.crypto.drbg import Drbg
from repro.pqc.registry import get_kem, get_sig


@pytest.fixture(scope="module")
def drbg():
    return Drbg("crypto-bench")


KEMS = ["x25519", "p256", "kyber512", "kyber768", "hqc128", "bikel1",
        "p256_kyber512"]


@pytest.mark.parametrize("name", KEMS)
def test_kem_roundtrip(benchmark, drbg, name):
    kem = get_kem(name)
    pk, sk = kem.keygen(drbg)

    def roundtrip():
        ct, ss = kem.encaps(pk, drbg)
        assert kem.decaps(sk, ct) == ss

    benchmark(roundtrip)


SIGS = ["rsa:2048", "falcon512", "dilithium2", "dilithium2_aes",
        "p256_dilithium2"]


@pytest.mark.parametrize("name", SIGS)
def test_sig_sign_verify(benchmark, drbg, name):
    sig = get_sig(name)
    pk, sk = sig.keygen(drbg)

    def cycle():
        s = sig.sign(sk, b"benchmark message", drbg)
        assert sig.verify(pk, b"benchmark message", s)

    benchmark(cycle)


def test_aes_gcm_record(benchmark):
    from repro.crypto.gcm import AesGcm

    gcm = AesGcm(b"k" * 16)
    payload = b"x" * 4096

    benchmark(lambda: gcm.encrypt(b"n" * 12, payload))


def test_haraka512(benchmark):
    from repro.crypto.haraka import haraka512

    benchmark(lambda: haraka512(bytes(64)))
