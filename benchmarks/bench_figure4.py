"""Figure 4: the log-latency ranking of KAs and SAs."""

import pytest

from benchmarks.conftest import write_artifact
from repro.core import campaign, evaluate, report
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES


@pytest.fixture(scope="module")
def results():
    return campaign.run_sets(["all-kem", "all-sig"])


def test_figure4_ranking(results, artifacts_dir, benchmark):
    kem_ranks, sig_ranks = benchmark(
        lambda: evaluate.figure4(results, ALL_KEM_NAMES, ALL_SIG_NAMES))
    text = report.render_ranking(kem_ranks, sig_ranks)
    print("\n" + text)
    write_artifact(artifacts_dir, "figure4.txt", text)

    kem_rank = dict(kem_ranks)
    sig_rank = dict(sig_ranks)
    # ranks span the whole [0, 10] scale
    assert min(kem_rank.values()) == 0 and max(kem_rank.values()) == 10
    assert min(sig_rank.values()) == 0 and max(sig_rank.values()) == 10
    # PQ KAs sit at/near the top; p521 hybrids at the bottom
    assert kem_rank["kyber512"] <= kem_rank["x25519"]
    assert kem_rank["p521_hqc256"] >= 9
    # Dilithium/Falcon rank above rsa:2048; SPHINCS+ at the bottom
    assert sig_rank["dilithium2"] <= sig_rank["rsa:2048"]
    assert sig_rank["falcon512"] <= sig_rank["rsa:2048"]
    assert sig_rank["sphincs256"] == 10
    assert sig_rank["rsa:1024"] == 0  # fastest overall (sub-level-one)


def test_ranking_is_monotonic_in_latency(results, benchmark):
    kem_ranks, _ = benchmark(lambda: evaluate.figure4(results, ALL_KEM_NAMES, ALL_SIG_NAMES))[0:2]
    latencies = [
        results[campaign.ExperimentConfig(kem=k, sig="rsa:2048").key].total_median
        for k, _ in kem_ranks
    ]
    assert latencies == sorted(latencies)
