"""Figure 3: KA/SA (in)dependence and the buffering optimization.

Regenerates the deviation analysis E(k,s) - M(k,s) under both OpenSSL
policies (3a default, 3b optimized) and the improvement table (3c), and
benchmarks the deviation computation.
"""

import statistics

import pytest

from benchmarks.conftest import write_artifact
from repro.core import campaign, report
from repro.core.analysis import deviations_for_levels
from repro.pqc.registry import LEVEL_GROUPS


@pytest.fixture(scope="module")
def optimized_results():
    return campaign.run_sets(["level1", "level3", "level5"])


@pytest.fixture(scope="module")
def default_results():
    return campaign.run_sets(["level1-nopush", "level3-nopush", "level5-nopush"])


def test_figure3a_default_policy(default_results, artifacts_dir, benchmark):
    deviations = benchmark(
        lambda: deviations_for_levels(default_results, "default", LEVEL_GROUPS))
    text = report.render_deviations(
        deviations, "Figure 3a: deviation E-M, default OpenSSL (ms, + = faster)")
    print("\n" + text)
    write_artifact(artifacts_dir, "figure3a.txt", text)
    # CPU-heavy KA x heavy SA combinations beat the additive prediction
    # when the buffer overflow pushes the SH early (parallel processing)
    by_pair = {(d.kem, d.sig): d for d in deviations}
    heavy = by_pair[("bikel1", "sphincs128")]
    assert heavy.deviation > 0.5e-3  # >= 0.5 ms faster than predicted


def test_figure3b_optimized_policy(optimized_results, artifacts_dir, benchmark):
    deviations = benchmark(
        lambda: deviations_for_levels(optimized_results, "optimized", LEVEL_GROUPS))
    text = report.render_deviations(
        deviations, "Figure 3b: deviation E-M, optimized OpenSSL (ms, + = faster)")
    print("\n" + text)
    write_artifact(artifacts_dir, "figure3b.txt", text)
    write_artifact(artifacts_dir, "deviations.csv", report.deviations_csv(deviations))
    # with the consistent early push, most deviations shrink: the bulk of
    # combinations sit within ~1.5 ms of the additive model
    magnitudes = sorted(abs(d.deviation) for d in deviations)
    median_abs = statistics.median(magnitudes)
    assert median_abs < 1.5e-3


def test_figure3c_improvement(optimized_results, default_results, artifacts_dir,
                              benchmark):
    optimized = benchmark(
        lambda: deviations_for_levels(optimized_results, "optimized", LEVEL_GROUPS))
    default = deviations_for_levels(default_results, "default", LEVEL_GROUPS)
    lines = ["Figure 3c: latency improvement of the optimized behaviour (ms)"]
    improvements = {}
    for d_opt, d_def in zip(optimized, default):
        assert (d_opt.kem, d_opt.sig) == (d_def.kem, d_def.sig)
        gain_ms = (d_def.measured - d_opt.measured) * 1e3
        improvements[(d_opt.kem, d_opt.sig)] = gain_ms
        lines.append(f"{d_opt.kem:<14} {d_opt.sig:<16} {gain_ms:+8.2f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(artifacts_dir, "figure3c.txt", text)
    # the paper: 'most handshakes were faster' with the optimized push
    gains = list(improvements.values())
    assert sum(1 for g in gains if g > -0.05) / len(gains) > 0.7
    # the dominating factor: CPU-intensive KAs overlap with heavy SAs only
    # when the SH leaves early. SPHINCS+ certificates overflow the 4096 B
    # buffer and flush the SH in *both* policies, so the big wins sit on
    # combinations that stay under the buffer limit (Bike/ECDH x RSA-3072,
    # exactly the paper's 'in the case of Bike and RSA, the effect is only
    # visible for the optimized version').
    heavy_pairs = [g for (k, s), g in improvements.items()
                   if k in ("bikel1", "bikel3", "p384", "p521", "hqc256")
                   and not s.startswith("sphincs")]
    assert max(heavy_pairs) > 1.0  # >= 1 ms of overlap recovered
    sphincs_gains = [g for (k, s), g in improvements.items() if s.startswith("sphincs")]
    assert min(sphincs_gains) > -0.2  # never slower, ~0 by construction
