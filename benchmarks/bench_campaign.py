"""Serial-vs-parallel campaign wall clock (`repro.core.executor`).

Runs the same experiment set twice from a cold cache — once with
``jobs=1`` (today's serial path) and once with ``jobs=N`` — plus a warm
re-run of each, and writes the wall-clock numbers and per-stage
breakdown to ``benchmarks/out/BENCH_campaign.json`` so the perf
trajectory accumulates run over run.

The default grid is sized for CI: it fans ``--jobs`` distinct credential
recordings (per-seed, ~0.5 s of pure-Python RSA keygen each) plus script
recordings and replays, which is the exact shape of a cold Appendix B
campaign in miniature. Pass ``--set level1`` (etc.) for the real thing —
on a 4-core machine the level1 cold run shows the >= 2x speedup the
recordings' parallelism buys.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--jobs N]
        [--set NAME] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core import campaign
from repro.core.executor import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.obs.hostmeta import host_metadata, serial_fallback_reason
from repro.obs.metrics import Metrics
from repro.obs.recorder import NULL_RECORDER, FlightRecorder

OUT_DEFAULT = Path(__file__).parent / "out" / "BENCH_campaign.json"


def build_payload(label: str, serial: dict, parallel: dict) -> dict:
    """Assemble the BENCH_campaign payload from the two timed passes.

    When the parallel pass fell back to serial (1-CPU host, jobs=1) the
    fallback block carries only ``jobs`` + the fallback marker and the
    speedup keys are omitted entirely: ``pqtls-bench-check`` then reports
    them as informational "missing" rows instead of gating a fabricated
    1.0x ratio against the multi-core tolerance band.
    """
    payload = {
        "set": label,
        "host": host_metadata(),
        "serial": serial,
        "parallel": parallel,
    }
    if not parallel.get("serial_fallback"):
        payload["speedup_cold"] = round(
            serial["cold_s"] / parallel["cold_s"], 3)
        payload["speedup_record_stage"] = round(
            serial["record_stage_s"] / parallel["record_stage_s"], 3) \
            if parallel["record_stage_s"] > 0 else None
    return payload


def bench_grid(jobs: int) -> list[ExperimentConfig]:
    """A miniature cold campaign with ``jobs`` independent recordings.

    Distinct seeds give distinct credential *and* script cache keys, so
    the expensive units (one rsa:2048 keygen chain each, ~0.5 s) are
    genuinely parallel work, while the x25519/kyber512 pairing per seed
    adds script-recording and replay traffic, including one lossy
    many-sample scenario per seed.
    """
    configs = []
    for worker in range(max(jobs, 2)):
        seed = f"bench-{worker}"
        for kem in ("x25519", "kyber512"):
            configs.append(ExperimentConfig(
                kem=kem, sig="rsa:2048", seed=seed, duration=5.0))
        configs.append(ExperimentConfig(
            kem="x25519", sig="rsa:2048", seed=seed, scenario="high-loss",
            max_samples=25, duration=5.0))
    return configs


def timed_run(configs, jobs: int, cache_dir: str,
              recorder=NULL_RECORDER, set_name: str = "campaign") -> dict:
    """One cold + one warm pass at the given parallelism."""
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    stats: dict = {}
    start = time.perf_counter()
    results = run_campaign(configs, jobs=jobs, metrics=Metrics(), stats=stats,
                           set_name=set_name, recorder=recorder)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    run_campaign(configs, jobs=jobs, metrics=Metrics())
    warm = time.perf_counter() - start
    return {
        "jobs": jobs,
        "cold_s": round(cold, 3),
        "warm_s": round(warm, 3),
        # cold - warm ~= recording + worker spawn: the parallelizable stage
        "record_stage_s": round(cold - warm, 3),
        "experiments": len(results),
        "dispatched": stats.get("dispatched"),
        "distinct_scripts": stats.get("distinct_scripts"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the parallel campaign executor against the "
                    "serial path on a cold cache.")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: all cores)")
    parser.add_argument("--set", dest="set_name", default=None,
                        help="named experiment set (e.g. level1) instead of "
                             "the synthetic bench grid")
    parser.add_argument("--out", type=Path, default=OUT_DEFAULT,
                        help=f"output JSON (default {OUT_DEFAULT})")
    parser.add_argument("--flight-record", type=Path, default=None,
                        help="write a flight-recorder JSONL covering the "
                             "cold passes (serial + parallel)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail (exit 1) unless a genuinely parallel run "
                             "achieves at least this cold-cache speedup; "
                             "also fails if the pool fell back to serial")
    args = parser.parse_args(argv)

    # mirror the executor's clamp: requesting more workers than cores
    # resolves to the serial fallback, which the serial pass already timed
    jobs = min(args.jobs or os.cpu_count() or 1, os.cpu_count() or 1)
    if args.set_name:
        configs = campaign.EXPERIMENT_SETS[args.set_name]()
    else:
        configs = bench_grid(jobs)
    label = args.set_name or "bench-grid"
    print(f"[bench_campaign] {label}: {len(configs)} experiments, "
          f"serial then --jobs {jobs} (cold cache each)", file=sys.stderr)

    recorder = (FlightRecorder(args.flight_record)
                if args.flight_record else NULL_RECORDER)
    saved_cache = os.environ.get("REPRO_CACHE_DIR")
    try:
        with tempfile.TemporaryDirectory(prefix="bench-serial-") as cache_dir:
            serial = timed_run(configs, 1, cache_dir, recorder,
                               f"{label}-serial")
        fallback = serial_fallback_reason(jobs, os.cpu_count())
        if fallback:
            # the executor would fall back to the exact serial path, so a
            # second timed run would only measure re-run noise; record the
            # fallback without cloning the serial numbers into fake
            # parallel ones (build_payload omits the speedup keys)
            parallel = {"jobs": jobs, "serial_fallback": True,
                        "serial_fallback_reason": fallback}
        else:
            with tempfile.TemporaryDirectory(prefix="bench-parallel-") as cache_dir:
                parallel = timed_run(configs, jobs, cache_dir, recorder,
                                     f"{label}-j{jobs}")
    finally:
        recorder.close()
        if saved_cache is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_cache

    payload = build_payload(label, serial, parallel)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(json.dumps(payload, indent=1))
    print(f"wrote {args.out}", file=sys.stderr)
    if recorder.enabled:
        print(f"wrote {recorder.path} ({len(recorder.events)} events)",
              file=sys.stderr)
    if args.require_speedup is not None:
        speedup = payload.get("speedup_cold")
        if speedup is None:
            print(f"[bench_campaign] FAIL: --require-speedup "
                  f"{args.require_speedup} but the pool fell back to serial "
                  f"({parallel.get('serial_fallback_reason')})",
                  file=sys.stderr)
            return 1
        if speedup < args.require_speedup:
            print(f"[bench_campaign] FAIL: speedup_cold {speedup} < required "
                  f"{args.require_speedup}", file=sys.stderr)
            return 1
        print(f"[bench_campaign] speedup_cold {speedup} >= required "
              f"{args.require_speedup}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
