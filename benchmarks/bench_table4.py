"""Table 4: constrained environments (netem scenarios).

Regenerates both halves of the appendix table across the six scenarios
and benchmarks one lossy (LTE-M) experiment with its stochastic sampling.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core import campaign, evaluate, report
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES


@pytest.fixture(scope="module")
def results():
    return campaign.run_sets(["all-kem-scenarios", "all-sig-scenarios"])


def test_table4a(results, artifacts_dir, benchmark):
    rows = benchmark(lambda: evaluate.table4(results, ALL_KEM_NAMES, vary="kem"))
    text = report.render_table4(rows, "Table 4a: KAs combined with rsa:2048 as SA")
    print("\n" + text)
    write_artifact(artifacts_dir, "table4a.txt", text)

    by_name = {row.algorithm: row for row in rows}
    for row in rows:
        # (i) loss is the mildest constraint
        assert row.medians_ms["high-loss"] < row.medians_ms["low-bandwidth"] * 2
        # (iii) latency grows ~linearly with delay: ~1 RTT floor
        assert row.medians_ms["high-delay"] >= 999
        # (iv) realistic scenarios mostly depend on the RTT
        assert row.medians_ms["5g"] >= 44
    # (ii) low bandwidth punishes data-heavy algorithms (HQC)
    assert (by_name["hqc256"].medians_ms["low-bandwidth"]
            > 4 * by_name["kyber1024"].medians_ms["low-bandwidth"])


def test_table4b(results, artifacts_dir, benchmark):
    rows = benchmark(lambda: evaluate.table4(results, ALL_SIG_NAMES, vary="sig"))
    text = report.render_table4(rows, "Table 4b: SAs combined with X25519 as KA")
    print("\n" + text)
    write_artifact(artifacts_dir, "table4b.txt", text)

    by_name = {row.algorithm: row for row in rows}
    # CWND overflow at 1 s RTT: the paper's multi-RTT handshakes
    assert 999 < by_name["falcon1024"].medians_ms["high-delay"] < 1300   # 1 RTT
    assert 1900 < by_name["dilithium5"].medians_ms["high-delay"] < 2300  # 2 RTT
    assert 1900 < by_name["sphincs128"].medians_ms["high-delay"] < 2400  # 2 RTT
    assert 2900 < by_name["sphincs192"].medians_ms["high-delay"] < 3400  # 3 RTT
    assert 3900 < by_name["sphincs256"].medians_ms["high-delay"] < 4400  # 4 RTT
    # Kyber and Falcon surpass other PQC in low-bandwidth settings
    assert (by_name["falcon512"].medians_ms["low-bandwidth"]
            < by_name["dilithium2"].medians_ms["low-bandwidth"])
    assert (by_name["sphincs128"].medians_ms["low-bandwidth"]
            > 3 * by_name["dilithium2"].medians_ms["low-bandwidth"])


def test_benchmark_lossy_experiment(benchmark):
    config = ExperimentConfig(kem="kyber512", sig="dilithium2", scenario="lte-m",
                              max_samples=101)
    benchmark(lambda: run_experiment(config, use_cache=False))
