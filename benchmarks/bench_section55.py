"""§5.5: PQ TLS attack-surface asymmetry (CPU skew and amplification)."""

import pytest

from benchmarks.conftest import write_artifact
from repro.core import campaign, evaluate, report
from repro.pqc.registry import ALL_SIG_NAMES


@pytest.fixture(scope="module")
def results():
    return campaign.run_sets(["table3-perf", "all-sig"])


def test_attack_metrics(results, artifacts_dir, benchmark):
    whitebox = evaluate.table3(results)
    t2b = evaluate.table2b(results, ALL_SIG_NAMES)
    metrics = benchmark(lambda: evaluate.attack_metrics(whitebox, t2b))
    text = report.render_attack_metrics(metrics)
    print("\n" + text)
    write_artifact(artifacts_dir, "section55.txt", text)

    # 'CPU costs can be up to 6x higher on the server'
    _, worst_sig, ratio = metrics.worst_cpu_ratio
    assert ratio > 4
    assert worst_sig == "sphincs128"  # SPHINCS+ signing skews the server
    # 'server replies up to 96x larger than the initial client requests'
    amp_sig, amplification = metrics.worst_amplification
    assert amp_sig.endswith("sphincs256")
    assert amplification > 40         # QUIC caps amplification at 3
    # the main lever in both attack scenarios is the choice of SA
    by_name = {row.algorithm: row for row in t2b}
    assert by_name["rsa:2048"].server_bytes / by_name["rsa:2048"].client_bytes < 4


def test_amplification_ordering(results, benchmark):
    t2b = benchmark(lambda: evaluate.table2b(results, ALL_SIG_NAMES))
    amp = {row.algorithm: row.server_bytes / row.client_bytes for row in t2b}
    assert amp["sphincs256"] > amp["sphincs192"] > amp["sphincs128"] > amp["dilithium2"]
    assert amp["dilithium2"] > amp["falcon512"] > amp["rsa:1024"]
