"""Table 3: white-box (perf) measurements.

Regenerates the CPU-cost / library-distribution table for the paper's
eight (KA, SA) pairs and benchmarks one profiled experiment.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core import campaign, evaluate, report
from repro.core.experiment import ExperimentConfig, run_experiment


@pytest.fixture(scope="module")
def results():
    return campaign.run_sets(["table3-perf"])


def test_table3(results, artifacts_dir, benchmark):
    rows = benchmark(lambda: evaluate.table3(results))
    text = report.render_table3(rows)
    print("\n" + text)
    write_artifact(artifacts_dir, "table3.txt", text)

    by_pair = {(row.kem, row.sig): row for row in rows}
    baseline = by_pair[("x25519", "rsa:2048")]
    # server-side computations dominate for the classical baseline (RSA sign)
    assert baseline.server_cpu_ms > baseline.client_cpu_ms
    # Kyber+Dilithium performs well with minimal decrease on higher levels
    kd1 = by_pair[("kyber512", "dilithium2")]
    kd5 = by_pair[("kyber1024", "dilithium5")]
    assert kd5.server_cpu_ms < kd1.server_cpu_ms * 2.0
    # BIKE+Dilithium: good on the server, bad on the client, and the
    # client work lives in libssl (the paper's key observation)
    bike = by_pair[("bikel1", "dilithium2")]
    assert bike.client_cpu_ms > bike.server_cpu_ms
    assert bike.client_library_share["libssl"] > bike.client_library_share.get("libcrypto", 0)
    # Kyber+SPHINCS+: the server drowns in libcrypto
    sphincs = by_pair[("kyber512", "sphincs128")]
    assert sphincs.server_cpu_ms > 5 * baseline.server_cpu_ms
    assert sphincs.server_library_share["libcrypto"] > 0.85
    # libcrypto+kernel+libssl carry ~90 % everywhere (paper's 'first glance')
    for row in rows:
        core_share = sum(row.server_library_share.get(lib, 0)
                         for lib in ("libcrypto", "kernel", "libssl"))
        assert core_share > 0.75, (row.kem, row.sig)


def test_benchmark_profiled_experiment(benchmark):
    config = ExperimentConfig(kem="bikel1", sig="dilithium2", profiling=True)
    benchmark(lambda: run_experiment(config, use_cache=False))
