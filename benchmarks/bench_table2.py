"""Table 2: handshake latency, data usage, and per-minute totals.

Regenerates both halves (2a: 23 KAs x rsa:2048, 2b: SAs x X25519),
asserts the paper's shape, and benchmarks one full 60 s-period experiment.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core import campaign, evaluate, report
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES


@pytest.fixture(scope="module")
def results():
    return campaign.run_sets(["all-kem", "all-sig"])


def test_table2a(results, artifacts_dir, benchmark):
    rows = benchmark(lambda: evaluate.table2a(results, ALL_KEM_NAMES))
    text = report.render_table2(rows, "Table 2a: KAs combined with rsa:2048 as SA")
    print("\n" + text)
    write_artifact(artifacts_dir, "table2a.txt", text)
    write_artifact(artifacts_dir, "latencies_kem.csv", report.latencies_csv(rows))

    by_name = {row.algorithm: row for row in rows}
    # paper shape: Kyber challenges X25519 at level 1...
    assert by_name["kyber512"].part_a_ms <= by_name["x25519"].part_a_ms * 1.2
    # ... and crushes the classical curves at levels 3/5
    assert by_name["kyber768"].part_a_ms < by_name["p384"].part_a_ms / 4
    assert by_name["kyber1024"].part_a_ms < by_name["p521"].part_a_ms / 10
    # hybrids at level 1 are effectively free
    assert by_name["p256_kyber512"].part_a_ms < by_name["p256"].part_a_ms + 0.3
    # data volumes are driven by key sizes (HQC largest)
    assert by_name["hqc256"].server_bytes > by_name["kyber1024"].server_bytes * 4
    # handshake totals land in the paper's range
    assert 15_000 < by_name["x25519"].n_total < 32_000


def test_table2b(results, artifacts_dir, benchmark):
    rows = benchmark(lambda: evaluate.table2b(results, ALL_SIG_NAMES))
    text = report.render_table2(rows, "Table 2b: SAs combined with X25519 as KA")
    print("\n" + text)
    write_artifact(artifacts_dir, "table2b.txt", text)
    write_artifact(artifacts_dir, "latencies_sig.csv", report.latencies_csv(rows))

    by_name = {row.algorithm: row for row in rows}
    # Dilithium (any level) and Falcon-512 beat rsa:2048's handshake signature
    for winner in ("dilithium2", "dilithium3", "dilithium5", "falcon512"):
        assert by_name[winner].part_b_ms < by_name["rsa:2048"].part_b_ms, winner
    # SPHINCS+ is 10-20x worse in latency and bytes
    assert by_name["sphincs128"].part_b_ms > 8 * by_name["rsa:2048"].part_b_ms
    assert by_name["sphincs128"].server_bytes > 20 * by_name["rsa:2048"].server_bytes
    # RSA's cubic signing growth
    assert (by_name["rsa:1024"].part_b_ms < by_name["rsa:2048"].part_b_ms
            < by_name["rsa:3072"].part_b_ms < by_name["rsa:4096"].part_b_ms)


def test_benchmark_single_experiment_period(benchmark):
    """Time one uncached 60 s measurement period (the pipeline's unit)."""
    config = ExperimentConfig(kem="kyber512", sig="dilithium2")
    benchmark(lambda: run_experiment(config, use_cache=False))
