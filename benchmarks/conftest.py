"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's artefacts (printed and
written under ``benchmarks/out/``) and times a representative unit of the
pipeline with pytest-benchmark. Recorded handshake scripts are cached
under ``.cache/`` — the first cold run records real crypto and is slow
(SPHINCS+ signing is minutes of pure-Python hashing); warm runs take
seconds.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(directory: Path, name: str, content: str) -> None:
    path = directory / name
    path.write_text(content if content.endswith("\n") else content + "\n")
    print(f"\n[artifact] {path}")
