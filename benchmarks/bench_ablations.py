"""Ablations of the design choices DESIGN.md calls out.

1. Buffering policy: what Table 2 would look like with stock OpenSSL.
2. Initial congestion window: the paper's conclusion that initcwnd
   becomes 'an important tuning factor' for PQ TLS.
3. Scripted replay vs. real crypto execution (the simulator shortcut).
"""

import pytest

from repro.crypto.drbg import Drbg
from repro.netsim import testbed as testbed_mod
from repro.netsim import tcp as tcp_mod
from repro.netsim.costmodel import CostModel
from repro.netsim.netem import SCENARIOS
from repro.netsim.scripted import load_credentials, record_script, scripted_apps
from repro.netsim.testbed import Testbed, run_simulated_handshake
from repro.tls.server import BufferPolicy


def _bed(kem, sig, **kwargs):
    cert, sk, store = load_credentials(sig)
    return Testbed(kem, sig, cert, sk, store, **kwargs)


def test_ablation_buffer_policy(benchmark):
    """Optimized flush is never slower, and helps heavy-CPU combinations."""
    pairs = [("p256", "rsa:3072"), ("bikel1", "rsa:3072"), ("kyber512", "rsa:1024")]
    gains = {}
    for kem, sig in pairs:
        optimized = _bed(kem, sig).run_handshake().total
        default = _bed(kem, sig, policy=BufferPolicy.DEFAULT).run_handshake().total
        gains[(kem, sig)] = (default - optimized) * 1e3
    print("\nbuffering gain (ms):", {f"{k}+{s}": round(g, 3) for (k, s), g in gains.items()})
    assert all(g >= -0.01 for g in gains.values())
    # overlap matters when both sides burn CPU
    assert gains[("bikel1", "rsa:3072")] > gains[("kyber512", "rsa:1024")]
    benchmark(lambda: _bed("p256", "rsa:3072").run_handshake())


def test_ablation_initcwnd(benchmark, monkeypatch):
    """Raising initcwnd from 10 to 40 removes dilithium5's extra RTT —
    the tuning knob the paper's conclusion recommends."""
    baseline = _bed("x25519", "dilithium5", scenario="high-delay").run_handshake().total
    monkeypatch.setattr(tcp_mod, "INIT_CWND", 40)
    tuned = _bed("x25519", "dilithium5", scenario="high-delay").run_handshake().total
    print(f"\ninitcwnd 10 -> {baseline * 1e3:.0f} ms, initcwnd 40 -> {tuned * 1e3:.0f} ms")
    assert baseline > 1.9          # 2 RTT with the default window
    assert tuned < 1.3             # 1 RTT once the flight fits
    monkeypatch.undo()
    benchmark(lambda: _bed("x25519", "dilithium5", scenario="high-delay").run_handshake())


def test_ablation_scripted_vs_real(benchmark):
    """The replay shortcut is >10x faster and trace-identical."""
    import time

    bed = _bed("kyber512", "dilithium2",
               drbg=Drbg("script:kyber512:dilithium2:optimized:paper"))
    t0 = time.perf_counter()
    real = bed.run_handshake()
    real_seconds = time.perf_counter() - t0

    script = record_script("kyber512", "dilithium2")

    def replay():
        client, server = scripted_apps(script)
        return run_simulated_handshake(
            client, server, scenario=SCENARIOS["none"],
            netem_drbg=Drbg("ablate"), cost_model=CostModel())

    t0 = time.perf_counter()
    trace = replay()
    replay_seconds = time.perf_counter() - t0
    assert trace.part_b == pytest.approx(real.part_b, rel=1e-9)
    print(f"\nreal {real_seconds * 1e3:.0f} ms wall vs replay {replay_seconds * 1e3:.1f} ms wall")
    assert replay_seconds < real_seconds
    benchmark(replay)
