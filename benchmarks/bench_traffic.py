"""Million-handshake traffic run (`repro.traffic`): throughput + flat RSS.

Drives the load engine through its public entry point with the committed
reference workload — one million Poisson arrivals against a 32-core
simulated server at rho ~0.83 — and writes wall clock, handshake
throughput, and resident-set numbers to
``benchmarks/out/BENCH_traffic.json``.

Two properties are on the line:

- **Throughput.** ``engine_wall_s`` is the gated metric (wall seconds,
  the usual 4x catastrophe band): a 1M-handshake run must stay
  CI-feasible. ``throughput_hps`` is the same number as a rate, for
  humans.
- **Constant memory.** Latencies stream into sketches; connection state
  is pooled. ``rss_growth_mb`` (RSS after minus before the run) is the
  direct check that a million handshakes allocate O(pairs x retention),
  not O(handshakes). The bench fails outright (exit 1) if completions
  fall below ``--require-handshakes`` or RSS grows past
  ``--max-rss-growth-mb`` — absolute guards, not baseline-relative ones,
  so they hold even on the first run of a new host.

The engine is DRBG-deterministic: for a fixed seed the offered count,
latency quantiles, and drop counts are identical on every host and at
any ``--jobs``; only the wall-clock numbers move.

Usage::

    PYTHONPATH=src python benchmarks/bench_traffic.py [--jobs N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs.hostmeta import host_metadata, peak_rss_bytes, rss_bytes
from repro.obs.metrics import Metrics
from repro.obs.recorder import NULL_RECORDER, FlightRecorder
from repro.traffic.engine import TrafficConfig, run_traffic
from repro.traffic.report import render_traffic

OUT_DEFAULT = Path(__file__).parent / "out" / "BENCH_traffic.json"

# ~1.008M offered arrivals: 5-sigma above the 1M floor so the Poisson
# draw can never undershoot the acceptance gate
ARRIVAL_DEFAULT = "poisson:25200/s"
DURATION_DEFAULT = 40.0


def _mb(value: int | None) -> float | None:
    return round(value / 1048576, 1) if value is not None else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the traffic engine on the reference "
                    "million-handshake workload.")
    parser.add_argument("--arrival", default=ARRIVAL_DEFAULT)
    parser.add_argument("--duration", type=float, default=DURATION_DEFAULT)
    parser.add_argument("--server-cores", type=int, default=32)
    parser.add_argument("--shard-seconds", type=float, default=5.0)
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="shard worker processes (default 1: the "
                             "committed baseline is the serial path, "
                             "comparable on any host)")
    parser.add_argument("--require-handshakes", type=int, default=1_000_000,
                        help="fail unless at least this many handshakes "
                             "complete (0 disables; default %(default)s)")
    parser.add_argument("--max-rss-growth-mb", type=float, default=256.0,
                        help="fail if RSS grows more than this across the "
                             "run (0 disables; default %(default)s)")
    parser.add_argument("--out", type=Path, default=OUT_DEFAULT,
                        help=f"output JSON (default {OUT_DEFAULT})")
    parser.add_argument("--flight-record", type=Path, default=None,
                        help="write the run's flight-recorder JSONL "
                             "(heartbeats carry live RSS)")
    args = parser.parse_args(argv)

    config = TrafficConfig(
        arrival=args.arrival, duration=args.duration,
        shard_seconds=args.shard_seconds, server_cores=args.server_cores)
    print(f"[bench_traffic] {config.arrival} for {config.duration:g}s, "
          f"{config.server_cores} server cores, --jobs {args.jobs}",
          file=sys.stderr)

    recorder = (FlightRecorder(args.flight_record)
                if args.flight_record else NULL_RECORDER)
    metrics = Metrics()
    rss_before = rss_bytes()
    start = time.perf_counter()
    try:
        summary = run_traffic(config, jobs=args.jobs, metrics=metrics,
                              recorder=recorder)
    finally:
        recorder.close()
    wall = time.perf_counter() - start
    rss_after = rss_bytes()

    total = metrics.histogram("traffic.kyber512.dilithium2.total")
    ttfb = metrics.histogram("traffic.kyber512.dilithium2.ttfb")
    payload = {
        "workload": {
            "arrival": config.arrival,
            "duration": config.duration,
            "server_cores": config.server_cores,
            "shard_seconds": config.shard_seconds,
            "jobs": summary.jobs,
            "shards": summary.shards,
        },
        "host": host_metadata(),
        "engine_wall_s": round(wall, 3),
        "throughput_hps": round(summary.completed / wall, 1) if wall else None,
        "offered": summary.offered,
        "completed": summary.completed,
        "dropped": summary.dropped,
        "peak_in_flight": summary.peak_in_flight,
        "load_factor": round(summary.load_factor, 4),
        # deterministic per seed: these move only if the model moves
        "latency_ms": {
            "total_p50": round(total.quantile(0.5) * 1e3, 4),
            "total_p99": round(total.quantile(0.99) * 1e3, 4),
            "total_p99_9": round(total.quantile(0.999) * 1e3, 4),
            "ttfb_p99": round(ttfb.quantile(0.99) * 1e3, 4),
        },
        "rss_before_mb": _mb(rss_before),
        "rss_after_mb": _mb(rss_after),
        "rss_growth_mb": (round((rss_after - rss_before) / 1048576, 1)
                          if rss_before is not None and rss_after is not None
                          else None),
        "peak_rss_mb": _mb(peak_rss_bytes()),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(render_traffic(metrics, config, summary), file=sys.stderr)
    print(json.dumps(payload, indent=1))
    print(f"wrote {args.out}", file=sys.stderr)
    if recorder.enabled:
        print(f"wrote {recorder.path} ({len(recorder.events)} events)",
              file=sys.stderr)

    if args.require_handshakes and summary.completed < args.require_handshakes:
        print(f"[bench_traffic] FAIL: {summary.completed} handshakes "
              f"< required {args.require_handshakes}", file=sys.stderr)
        return 1
    growth = payload["rss_growth_mb"]
    if args.max_rss_growth_mb and growth is not None \
            and growth > args.max_rss_growth_mb:
        print(f"[bench_traffic] FAIL: RSS grew {growth} MB "
              f"> allowed {args.max_rss_growth_mb} MB", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
