"""Histogram quantile-path microbenchmarks (`repro.obs.metrics`).

Two measurements, written to ``benchmarks/out/BENCH_metrics.json``:

- **Cached sorted view.** ``Histogram.quantile`` used to re-sort the
  sample list on every call; it now keeps a sorted view that is
  invalidated on ``observe`` and rebuilt at most once per write. The
  bench interleaves quantile reads with occasional writes (the shape of
  a live progress display polling p99 mid-campaign) and times the same
  workload against a deliberately cache-less re-sort, reporting the
  speedup.
- **Streaming spill.** Feeding 100k observations through a Histogram
  with the default retention bound must stay O(1) in memory (the exact
  window spills into the DDSketch + reservoir pair). Reports wall time,
  the retained bucket count, and the observed relative error of
  p50/p90/p99 against the exact offline quantiles — the number that
  backs the documented ``relative_accuracy`` bound.
- **Lint runner.** A cold `pqtls-lint` pass over ``src/repro`` into a
  fresh cache directory versus the warm pass that follows it. The warm
  number is what every incremental CI/pre-commit run pays, so it gates
  regressions in the content-addressed cache path; the cold number
  tracks the full analysis (flow engine included).

Usage::

    PYTHONPATH=src python benchmarks/bench_metrics.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import tempfile
import time
from pathlib import Path

from repro.obs.hostmeta import host_metadata
from repro.obs.metrics import DEFAULT_RETENTION, Histogram

OUT_DEFAULT = Path(__file__).parent / "out" / "BENCH_metrics.json"

# cached-sort workload: a window of samples polled for quantiles far
# more often than it is written, as the live progress line does
WINDOW = 2000
READS_PER_WRITE = 50
WRITES = 200

STREAM_N = 100_000
QUANTILES = (0.5, 0.9, 0.99)


def synthetic_latencies(n: int, seed: int = 0xC0FFEE) -> list[float]:
    """Deterministic long-tailed 'handshake latency' stream (seconds)."""
    rng = random.Random(seed)
    return [0.001 + rng.expovariate(1 / 0.042) for _ in range(n)]


def bench_cached_sort() -> dict:
    values = synthetic_latencies(WINDOW + WRITES)

    def workload(quantile_of) -> float:
        histogram = Histogram("bench.latency", retention=10 ** 9)
        for value in values[:WINDOW]:
            histogram.observe(value)
        sink = 0.0
        start = time.perf_counter()
        for value in values[WINDOW:]:
            histogram.observe(value)
            for _ in range(READS_PER_WRITE):
                sink += quantile_of(histogram, 0.99)
        elapsed = time.perf_counter() - start
        assert sink > 0
        return elapsed

    cached = workload(lambda h, q: h.quantile(q))

    def resort_every_call(histogram, q):  # what the old implementation did
        ordered = sorted(histogram.samples)
        return ordered[round(q * (len(ordered) - 1))]

    naive = workload(resort_every_call)
    return {
        "reads": WRITES * READS_PER_WRITE,
        "window": WINDOW,
        "cached_s": round(cached, 4),
        "resort_s": round(naive, 4),
        "speedup": round(naive / cached, 2),
    }


def bench_streaming_spill() -> dict:
    values = synthetic_latencies(STREAM_N)
    exact = sorted(values)
    histogram = Histogram("bench.stream")
    start = time.perf_counter()
    for value in values:
        histogram.observe(value)
    elapsed = time.perf_counter() - start

    entry = histogram.snapshot_entry()
    streaming = entry["streaming"]
    errors = {}
    for q in QUANTILES:
        true = exact[round(q * (STREAM_N - 1))]
        errors[f"p{int(q * 100)}_rel_err"] = round(
            abs(histogram.quantile(q) - true) / true, 5)
    return {
        "observations": STREAM_N,
        "retention": DEFAULT_RETENTION,
        "observe_s": round(elapsed, 4),
        "retained_buckets": len(streaming["sketch"]["buckets"]),
        "reservoir_k": len(streaming["reservoir"]),
        **errors,
    }


def bench_lint_runner() -> dict:
    """Cold vs warm `pqtls-lint` over src/repro with a throwaway cache."""
    from repro.analysis.runner import analyze

    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        start = time.perf_counter()
        cold_report = analyze([src], project_root=root)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        warm_report = analyze([src], project_root=root)
        warm = time.perf_counter() - start
    assert warm_report.from_cache == warm_report.files_checked
    return {
        "files": warm_report.files_checked,
        "findings": len(cold_report.findings),
        "cold_s": round(cold, 4),
        "warm_s": round(warm, 4),
        "warm_speedup": round(cold / warm, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=OUT_DEFAULT)
    args = parser.parse_args(argv)

    report = {
        "host": host_metadata(),
        "quantile_cached_sort": bench_cached_sort(),
        "streaming_spill": bench_streaming_spill(),
        "lint_runner": bench_lint_runner(),
    }
    print(json.dumps(report, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[artifact] {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
